package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/countmin"
)

// SizeMode selects how a size measurement point uploads its per-epoch data.
type SizeMode int

const (
	// SizeModeCumulative is the paper's two-sketch design: the point
	// uploads its cumulative C sketch and the center recovers each epoch's
	// delta by subtraction (Section V-B). Two sketches of memory.
	SizeModeCumulative SizeMode = iota + 1
	// SizeModeDelta is the ablation variant: the point keeps a third B
	// sketch like the spread design and uploads the per-epoch delta
	// directly. Same information at the center, three sketches of memory.
	SizeModeDelta
)

// sizeShard is one ingest shard: a delta CountMin receiving a slice of
// the record stream, folded into the authoritative sketch set at the fold
// points (see shard.go).
type sizeShard struct {
	mu    sync.Mutex
	dirty atomic.Bool // set on record, cleared on fold; lets readers skip clean shards
	d     *countmin.Sketch
}

// SizePoint is one measurement point running the flow-size design. Safe
// for concurrent use: the record path is lock-striped across shards, so
// concurrent recorders do not serialize behind the point mutex.
type SizePoint struct {
	mu sync.Mutex // guards epoch and the authoritative sketch set

	id     int
	params countmin.Params
	mode   SizeMode
	epoch  int64

	b  *countmin.Sketch // only allocated in SizeModeDelta
	c  *countmin.Sketch // query target; also the upload in cumulative mode
	cp *countmin.Sketch // C': staging for the next epoch

	// Degradation accounting (see coverage.go and protocol.go).
	// aggAppliedPrev remembers whether the aggregate was merged during the
	// previous epoch: the cumulative upload C_e carries the aggregate
	// applied during e-1, so its UploadMeta needs one epoch of memory.
	topoPoints, topoN int
	aggApplied        bool
	aggAppliedPrev    bool
	enhApplied        bool
	// backfilled guards against duplicate backfill pushes (a center-sent
	// aggregate merged directly into C after a restart; see
	// ApplyBackfillCovAt). Reset at every epoch boundary.
	backfilled bool
	covMerged  int
	covCur     Coverage

	shards []*sizeShard
	rr     atomic.Uint64 // round-robin cursor for batch shard selection
}

// NewSizePoint creates a measurement point with the GOMAXPROCS-bounded
// default ingest-shard count. Points of one cluster must share D and Seed;
// W may differ (device diversity).
func NewSizePoint(id int, p countmin.Params, mode SizeMode) (*SizePoint, error) {
	return NewSizePointShards(id, p, mode, 0)
}

// NewSizePointShards is NewSizePoint with an explicit ingest-shard count
// (0 = the GOMAXPROCS-bounded default, 1 = the serial layout).
func NewSizePointShards(id int, p countmin.Params, mode SizeMode, shards int) (*SizePoint, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if mode != SizeModeCumulative && mode != SizeModeDelta {
		return nil, fmt.Errorf("core: invalid size mode %d", mode)
	}
	sp := &SizePoint{
		id:     id,
		params: p,
		mode:   mode,
		epoch:  1,
		c:      countmin.New(p),
		cp:     countmin.New(p),
		shards: make([]*sizeShard, normShards(shards)),
	}
	for i := range sp.shards {
		sp.shards[i] = &sizeShard{d: countmin.New(p)}
	}
	if mode == SizeModeDelta {
		sp.b = countmin.New(p)
	}
	return sp, nil
}

// ID returns the point's identifier.
func (p *SizePoint) ID() int { return p.id }

// Params returns the point's sketch parameters.
func (p *SizePoint) Params() countmin.Params { return p.params }

// Mode returns the upload mode.
func (p *SizePoint) Mode() SizeMode { return p.mode }

// Epoch returns the current (1-based) epoch index.
func (p *SizePoint) Epoch() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.epoch
}

// SetTopology tells the point how large its cluster is (point count and
// window n), which is what Coverage measures queries against. A standalone
// point (the default) expects nothing and always reports full coverage.
func (p *SizePoint) SetTopology(points, windowN int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.topoPoints, p.topoN = points, windowN
}

// AdvanceTo fast-forwards the point's epoch clock without touching sketch
// state. A point that restarts without persisted state rejoins its cluster
// at the cluster's current epoch; everything before it is gone, so the
// current window's coverage is reset to empty.
func (p *SizePoint) AdvanceTo(epoch int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if epoch <= p.epoch {
		return
	}
	p.epoch = epoch
	p.covCur = Coverage{EpochsExpected: expectedPointEpochs(p.topoPoints, p.topoN, epoch-1)}
	p.covMerged = 0
	p.aggApplied, p.aggAppliedPrev, p.enhApplied, p.backfilled = false, false, false, false
}

// Coverage returns the eq. (1)/(2) window coverage of the current query
// target (see Coverage).
func (p *SizePoint) Coverage() Coverage {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.covCur
}

// Record inserts one packet of flow f. Only the flow's ingest shard is
// touched; concurrent recorders of distinct flows proceed in parallel.
func (p *SizePoint) Record(f uint64) {
	sh := p.shards[shardOf(f, len(p.shards))]
	sh.mu.Lock()
	sh.d.Record(f)
	if !sh.dirty.Load() {
		sh.dirty.Store(true)
	}
	sh.mu.Unlock()
}

// RecordBatch inserts one packet per flow in fs. The whole batch lands in
// a single shard under a single lock acquisition (round-robin with
// try-lock steering away from busy shards), amortizing synchronization to
// one atomic and one lock per batch.
func (p *SizePoint) RecordBatch(fs []uint64) {
	if len(fs) == 0 {
		return
	}
	sh := p.lockShard()
	for _, f := range fs {
		sh.d.Record(f)
	}
	if !sh.dirty.Load() {
		sh.dirty.Store(true)
	}
	sh.mu.Unlock()
}

// RecordBatchPairs is RecordBatch over <flow, element> packets, recording
// only the flow keys (the size design ignores elements). It lets mixed
// transports batch without re-slicing.
func (p *SizePoint) RecordBatchPairs(ps []SpreadPacket) {
	if len(ps) == 0 {
		return
	}
	sh := p.lockShard()
	for _, q := range ps {
		sh.d.Record(q.Flow)
	}
	if !sh.dirty.Load() {
		sh.dirty.Store(true)
	}
	sh.mu.Unlock()
}

// lockShard picks and locks an ingest shard for a batch: round-robin start,
// try-lock probing past shards another recorder holds.
func (p *SizePoint) lockShard() *sizeShard {
	n := len(p.shards)
	start := int(p.rr.Add(1)-1) % n
	for i := 0; i < n; i++ {
		sh := p.shards[(start+i)%n]
		if sh.mu.TryLock() {
			return sh
		}
	}
	sh := p.shards[start]
	sh.mu.Lock()
	return sh
}

// Query answers the approximate real-time networkwide T-query for flow f
// from the local C sketch plus the not-yet-folded shard deltas. The
// on-the-fly fold (counter-wise sum along f's row positions) makes the
// answer bit-identical to the serial single-sketch path.
func (p *SizePoint) Query(f uint64) int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	var (
		extras [maxShards]*countmin.Sketch
		locked [maxShards]*sizeShard
		n      int
	)
	for _, sh := range p.shards {
		if sh.dirty.Load() {
			sh.mu.Lock()
			locked[n] = sh
			extras[n] = sh.d
			n++
		}
	}
	est := p.c.EstimateSummed(f, extras[:n])
	for i := 0; i < n; i++ {
		locked[i].mu.Unlock()
	}
	return est
}

// QueryWithCoverage answers Query(f) together with the coverage of the
// window the answer was computed from, read atomically so the pair is
// consistent across a concurrent epoch boundary.
func (p *SizePoint) QueryWithCoverage(f uint64) (int64, Coverage) {
	p.mu.Lock()
	defer p.mu.Unlock()
	var (
		extras [maxShards]*countmin.Sketch
		locked [maxShards]*sizeShard
		n      int
	)
	for _, sh := range p.shards {
		if sh.dirty.Load() {
			sh.mu.Lock()
			locked[n] = sh
			extras[n] = sh.d
			n++
		}
	}
	est := p.c.EstimateSummed(f, extras[:n])
	for i := 0; i < n; i++ {
		locked[i].mu.Unlock()
	}
	return est, p.covCur
}

// flushShardsLocked folds every dirty shard delta into the authoritative
// sketch set (counter-wise addition into C, C' and, in delta mode, B) and
// resets it. Caller holds p.mu.
func (p *SizePoint) flushShardsLocked() {
	for _, sh := range p.shards {
		if !sh.dirty.Load() {
			continue
		}
		sh.mu.Lock()
		mustAddSketch(p.c, sh.d)
		mustAddSketch(p.cp, sh.d)
		if p.b != nil {
			mustAddSketch(p.b, sh.d)
		}
		sh.d.Reset()
		sh.dirty.Store(false)
		sh.mu.Unlock()
	}
}

// mustAddSketch folds src into dst; shards share the point's parameters by
// construction, so a mismatch is a programmer error.
func mustAddSketch(dst, src *countmin.Sketch) {
	if err := dst.AddSketch(src); err != nil {
		panic("core: shard fold: " + err.Error())
	}
}

// EndEpoch performs the epoch-boundary actions and returns the upload for
// the epoch that just ended: the cumulative C in cumulative mode, or the
// per-epoch B in delta mode. The returned sketch is owned by the caller.
//
// The upload is taken by pointer swap, not by cloning under the lock: in
// cumulative mode the old C itself is handed to the caller and C' takes
// its place (with a fresh zeroed C' behind it), so the epoch boundary
// costs the shard fold plus one allocation instead of a full sketch copy.
// Recorders are never blocked: they only touch shard deltas, which are
// folded one shard at a time.
func (p *SizePoint) EndEpoch() *countmin.Sketch {
	upload, _ := p.EndEpochMeta(false)
	return upload
}

// EndEpochMeta is EndEpoch returning the upload's protocol metadata (which
// center pushes its lineage absorbed — see UploadMeta). With rebase set, a
// cumulative-mode point uploads a clone of C' instead of C: C' holds only
// the finished epoch's delta plus the aggregate applied during it, letting
// the center reseed its recovery chain after the point lost buffered
// uploads. Rebase is meaningless (and ignored) in delta mode.
func (p *SizePoint) EndEpochMeta(rebase bool) (*countmin.Sketch, UploadMeta) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.flushShardsLocked()
	meta := UploadMeta{Epoch: p.epoch}
	var upload *countmin.Sketch
	if p.mode == SizeModeCumulative {
		if rebase {
			meta.Rebase = true
			meta.AggApplied = p.aggApplied
			upload = p.cp.Clone()
			p.c = p.cp
			p.cp = countmin.New(p.params)
		} else {
			meta.AggApplied = p.aggAppliedPrev
			meta.EnhApplied = p.enhApplied
			upload = p.c
			p.c = p.cp
			p.cp = countmin.New(p.params)
		}
	} else {
		meta.AggApplied = p.aggAppliedPrev
		meta.EnhApplied = p.enhApplied
		upload = p.b
		p.b = countmin.New(p.params)
		p.c, p.cp = p.cp, p.c
		p.cp.Reset()
	}
	p.rollCoverageLocked()
	p.epoch++
	return upload, meta
}

// rollCoverageLocked moves the staged aggregate's coverage onto the query
// target (C' becomes C at this boundary) and opens a fresh slot for the
// next epoch's push. Caller holds p.mu with p.epoch still the epoch that
// is ending.
func (p *SizePoint) rollCoverageLocked() {
	exp := expectedPointEpochs(p.topoPoints, p.topoN, p.epoch)
	m := p.covMerged
	if m < 0 || m > exp {
		// Aggregate applied through the coverage-oblivious path: trust it
		// to be whole.
		m = exp
	}
	p.covCur = Coverage{EpochsMerged: m, EpochsExpected: exp}
	p.covMerged = 0
	p.aggAppliedPrev, p.aggApplied = p.aggApplied, false
	p.enhApplied, p.backfilled = false, false
}

// ApplyAggregate adds the center's ST-join result into C'.
func (p *SizePoint) ApplyAggregate(agg *countmin.Sketch) error {
	if agg == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.cp.AddSketch(agg); err != nil {
		return fmt.Errorf("size point %d: apply aggregate: %w", p.id, err)
	}
	p.aggApplied = true
	p.covMerged = -1
	return nil
}

// ApplyEnhancement adds the peers' last-completed-epoch sum directly into C
// (Section IV-D applied to size). In cumulative mode the center compensates
// for this at recovery time.
func (p *SizePoint) ApplyEnhancement(enh *countmin.Sketch) error {
	if enh == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.c.AddSketch(enh); err != nil {
		return fmt.Errorf("size point %d: apply enhancement: %w", p.id, err)
	}
	p.enhApplied = true
	return nil
}

// ApplyAggregateAt is ApplyAggregate guarded by an epoch check under the
// point's lock; returns ErrStaleEpoch if the point has moved past epoch k,
// and ErrDuplicatePush if this epoch's aggregate was already merged (a
// reconnect re-push — merging twice would double the counters).
func (p *SizePoint) ApplyAggregateAt(k int64, agg *countmin.Sketch) error {
	return p.applyAggregateAt(k, agg, -1)
}

// ApplyAggregateCovAt is ApplyAggregateAt carrying the aggregate's
// coverage: how many point-epoch uploads the center actually joined into
// it. Queries answered from the window this aggregate lands in report that
// coverage (QueryWithCoverage).
func (p *SizePoint) ApplyAggregateCovAt(k int64, agg *countmin.Sketch, merged int) error {
	return p.applyAggregateAt(k, agg, merged)
}

func (p *SizePoint) applyAggregateAt(k int64, agg *countmin.Sketch, merged int) error {
	if agg == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.epoch != k {
		return ErrStaleEpoch
	}
	if p.aggApplied {
		return ErrDuplicatePush
	}
	if err := p.cp.AddSketch(agg); err != nil {
		return fmt.Errorf("size point %d: apply aggregate: %w", p.id, err)
	}
	p.aggApplied = true
	p.covMerged = merged
	return nil
}

// ApplyEnhancementAt is ApplyEnhancement guarded by an epoch check under
// the point's lock, with the same duplicate-push guard as
// ApplyAggregateAt.
func (p *SizePoint) ApplyEnhancementAt(k int64, enh *countmin.Sketch) error {
	if enh == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.epoch != k {
		return ErrStaleEpoch
	}
	if p.enhApplied {
		return ErrDuplicatePush
	}
	if err := p.c.AddSketch(enh); err != nil {
		return fmt.Errorf("size point %d: apply enhancement: %w", p.id, err)
	}
	p.enhApplied = true
	return nil
}

// SizeCenter is the measurement center for the flow-size design. In
// cumulative mode it recovers per-epoch deltas from the cumulative uploads;
// in delta mode uploads already are deltas.
type SizeCenter struct {
	mu sync.Mutex

	windowN int
	mode    SizeMode
	params  map[int]countmin.Params
	wMax    int

	// deltas[point][epoch] is the recovered single-epoch measurement.
	deltas map[int]map[int64]*countmin.Sketch
	// sentAgg[point][epoch] is the aggregate pushed to point during that
	// epoch, exactly as sent (customized width); needed to invert the
	// cumulative upload.
	sentAgg map[int]map[int64]*countmin.Sketch
	// sentEnh[point][epoch] is the enhancement pushed during that epoch.
	sentEnh map[int]map[int64]*countmin.Sketch
	// lastEpoch[point] is the last upload epoch, to enforce sequencing.
	lastEpoch map[int]int64
	// chainBroken[point] marks a cumulative-mode point whose recovery
	// chain lost an epoch (upload gap): the inversion needs the previous
	// epoch's delta, so post-gap uploads are unusable until the point
	// sends a rebase upload (see UploadMeta.Rebase).
	chainBroken map[int]bool
}

// NewSizeCenter creates a center for a cluster whose points use the given
// CountMin parameters (keyed by point id). All parameters must share D and
// Seed; the maximum width must be a multiple of every width.
func NewSizeCenter(windowN int, points map[int]countmin.Params, mode SizeMode) (*SizeCenter, error) {
	if windowN < 3 {
		return nil, fmt.Errorf("core: window n must be >= 3, got %d", windowN)
	}
	if len(points) == 0 {
		return nil, fmt.Errorf("core: no measurement points")
	}
	if mode != SizeModeCumulative && mode != SizeModeDelta {
		return nil, fmt.Errorf("core: invalid size mode %d", mode)
	}
	wMax := 0
	var ref countmin.Params
	for _, p := range points {
		if err := p.Validate(); err != nil {
			return nil, err
		}
		if p.W > wMax {
			wMax = p.W
			ref = p
		}
	}
	for id, p := range points {
		if p.D != ref.D || p.Seed != ref.Seed {
			return nil, fmt.Errorf("core: point %d does not share D/Seed with the cluster", id)
		}
		if wMax%p.W != 0 {
			return nil, fmt.Errorf("core: width %d of point %d does not divide max width %d", p.W, id, wMax)
		}
	}
	c := &SizeCenter{
		windowN:     windowN,
		mode:        mode,
		params:      make(map[int]countmin.Params, len(points)),
		wMax:        wMax,
		deltas:      make(map[int]map[int64]*countmin.Sketch, len(points)),
		sentAgg:     make(map[int]map[int64]*countmin.Sketch, len(points)),
		sentEnh:     make(map[int]map[int64]*countmin.Sketch, len(points)),
		lastEpoch:   make(map[int]int64, len(points)),
		chainBroken: make(map[int]bool, len(points)),
	}
	for id, p := range points {
		c.params[id] = p
		c.deltas[id] = make(map[int64]*countmin.Sketch)
		c.sentAgg[id] = make(map[int64]*countmin.Sketch)
		c.sentEnh[id] = make(map[int64]*countmin.Sketch)
	}
	return c, nil
}

// Receive ingests point's upload for the given epoch and recovers that
// epoch's measurement, assuming every center push was applied (the healthy
// in-process path). Transports that can lose pushes use ReceiveMeta.
func (c *SizeCenter) Receive(point int, epoch int64, upload *countmin.Sketch) error {
	return c.ReceiveMeta(point, epoch, upload, UploadMeta{Epoch: epoch, AggApplied: true, EnhApplied: true})
}

// ReceiveMeta ingests point's upload for the given epoch and recovers that
// epoch's measurement, subtracting only the pushes the upload's lineage
// actually absorbed (meta). Degraded sequences are tolerated rather than
// fatal: an epoch at or before the last ingested one is dropped
// idempotently (ErrDuplicateUpload); in cumulative mode an epoch gap
// breaks the recovery chain, so post-gap uploads are dropped
// (ErrUploadGap) until a rebase upload reseeds the chain; in delta mode
// uploads are independent and gaps merely leave window holes, which
// CoverageFor reports.
func (c *SizeCenter) ReceiveMeta(point int, epoch int64, upload *countmin.Sketch, meta UploadMeta) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	params, ok := c.params[point]
	if !ok {
		return fmt.Errorf("core: unknown size point %d", point)
	}
	if upload.Params() != params {
		return fmt.Errorf("core: upload from point %d has parameters %+v, want %+v",
			point, upload.Params(), params)
	}
	last := c.lastEpoch[point]
	if epoch <= last {
		return ErrDuplicateUpload
	}

	delta := upload.Clone()
	if c.mode == SizeModeCumulative {
		sub := func(sk *countmin.Sketch, ok bool) error {
			if !ok {
				return nil
			}
			if err := delta.SubSketch(sk); err != nil {
				return fmt.Errorf("core: recover point %d epoch %d: %w", point, epoch, err)
			}
			return nil
		}
		switch {
		case meta.Rebase:
			// C' = delta_{x,epoch} + agg applied during epoch: a clean
			// reseed regardless of what came before.
			if meta.AggApplied {
				agg, ok := c.sentAgg[point][epoch]
				if err := sub(agg, ok); err != nil {
					return err
				}
			}
			c.chainBroken[point] = false
		case epoch != last+1 || c.chainBroken[point]:
			// The chain lost an epoch: C contains the missing previous
			// delta and nothing can subtract it. Drop the payload, keep
			// the sequence position, wait for a rebase.
			c.chainBroken[point] = true
			c.lastEpoch[point] = epoch
			c.trimLocked(epoch)
			return ErrUploadGap
		default:
			// Invert the cumulative upload (Section V-B):
			//   C_{x,k} = agg applied during k-1 + enh applied during k
			//           + delta_{x,k-1} + delta_{x,k}.
			prev, ok := c.deltas[point][epoch-1]
			if err := sub(prev, ok); err != nil {
				return err
			}
			if meta.AggApplied {
				agg, ok := c.sentAgg[point][epoch-1]
				if err := sub(agg, ok); err != nil {
					return err
				}
			}
			if meta.EnhApplied {
				enh, ok := c.sentEnh[point][epoch]
				if err := sub(enh, ok); err != nil {
					return err
				}
			}
		}
	}
	c.deltas[point][epoch] = delta
	c.lastEpoch[point] = epoch
	c.trimLocked(epoch)
	return nil
}

// LastEpoch returns the most recent epoch the point has uploaded (0 if
// none). The transport layer uses it to resynchronize reconnecting points.
func (c *SizeCenter) LastEpoch(point int) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastEpoch[point]
}

// MaxEpoch returns the most recent epoch any point has uploaded (0 if
// none) — the cluster's epoch clock as the center sees it.
func (c *SizeCenter) MaxEpoch() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var m int64
	for _, e := range c.lastEpoch {
		if e > m {
			m = e
		}
	}
	return m
}

// CoverageFor counts, for the aggregate pushed during epoch k, how many
// point-epoch measurements the center actually holds in the eq. (5) join
// range versus how many a fully healthy window would contribute.
func (c *SizeCenter) CoverageFor(k int64) (merged, expected int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	first, last, ok := aggregateSpan(k, c.windowN)
	if !ok {
		return 0, 0
	}
	for _, per := range c.deltas {
		for e := first; e <= last; e++ {
			if _, ok := per[e]; ok {
				merged++
			}
		}
	}
	return merged, len(c.deltas) * int(last-first+1)
}

// Delta returns the recovered measurement of one epoch at one point (a
// clone), or nil if unknown. Exposed for tests and diagnostics.
func (c *SizeCenter) Delta(point int, epoch int64) *countmin.Sketch {
	c.mu.Lock()
	defer c.mu.Unlock()
	d, ok := c.deltas[point][epoch]
	if !ok {
		return nil
	}
	return d.Clone()
}

func (c *SizeCenter) trimLocked(latest int64) {
	floor := latest - int64(c.windowN) - 1
	for _, per := range c.deltas {
		for e := range per {
			if e < floor {
				delete(per, e)
			}
		}
	}
	for _, per := range c.sentAgg {
		for e := range per {
			if e < floor {
				delete(per, e)
			}
		}
	}
	for _, per := range c.sentEnh {
		for e := range per {
			if e < floor {
				delete(per, e)
			}
		}
	}
}

// temporalJoinLocked sums point's deltas over epochs [first, last].
func (c *SizeCenter) temporalJoinLocked(point int, first, last int64) (*countmin.Sketch, error) {
	var acc *countmin.Sketch
	for e := first; e <= last; e++ {
		d, ok := c.deltas[point][e]
		if !ok {
			continue
		}
		if acc == nil {
			acc = d.Clone()
			continue
		}
		if err := acc.AddSketch(d); err != nil {
			return nil, fmt.Errorf("core: temporal join point %d epoch %d: %w", point, e, err)
		}
	}
	return acc, nil
}

// spatialJoinLocked expands each part to the maximum width and sums.
func (c *SizeCenter) spatialJoinLocked(parts map[int]*countmin.Sketch) (*countmin.Sketch, error) {
	var acc *countmin.Sketch
	for point, s := range parts {
		if s == nil {
			continue
		}
		e, err := s.ExpandTo(c.wMax)
		if err != nil {
			return nil, fmt.Errorf("core: expand point %d: %w", point, err)
		}
		if acc == nil {
			acc = e
			continue
		}
		if err := acc.AddSketch(e); err != nil {
			return nil, fmt.Errorf("core: spatial join point %d: %w", point, err)
		}
	}
	return acc, nil
}

// AggregateFor computes, during epoch k, the networkwide sum of epochs
// k-n+2 .. k-1, compressed to the requesting point's width, and records it
// as sent (required for recovery in cumulative mode). Idempotent per
// (point, k): repeated calls return the recorded aggregate.
func (c *SizeCenter) AggregateFor(point int, k int64) (*countmin.Sketch, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	params, ok := c.params[point]
	if !ok {
		return nil, fmt.Errorf("core: unknown size point %d", point)
	}
	if sent, ok := c.sentAgg[point][k]; ok {
		return sent.Clone(), nil
	}
	first, last := k-int64(c.windowN)+2, k-1
	parts := make(map[int]*countmin.Sketch, len(c.deltas))
	for id := range c.deltas {
		tj, err := c.temporalJoinLocked(id, first, last)
		if err != nil {
			return nil, err
		}
		parts[id] = tj
	}
	joined, err := c.spatialJoinLocked(parts)
	if err != nil || joined == nil {
		return nil, err
	}
	out, err := joined.CompressTo(params.W)
	if err != nil {
		return nil, err
	}
	c.sentAgg[point][k] = out.Clone()
	return out, nil
}

// EnhancementFor computes, during epoch k, the sum over peers of epoch k-1,
// compressed to the requesting point's width, and records it as sent.
// Idempotent per (point, k).
func (c *SizeCenter) EnhancementFor(point int, k int64) (*countmin.Sketch, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	params, ok := c.params[point]
	if !ok {
		return nil, fmt.Errorf("core: unknown size point %d", point)
	}
	if sent, ok := c.sentEnh[point][k]; ok {
		return sent.Clone(), nil
	}
	parts := make(map[int]*countmin.Sketch, len(c.deltas))
	for id, per := range c.deltas {
		if id == point {
			continue
		}
		if d, ok := per[k-1]; ok {
			parts[id] = d
		}
	}
	joined, err := c.spatialJoinLocked(parts)
	if err != nil || joined == nil {
		return nil, err
	}
	out, err := joined.CompressTo(params.W)
	if err != nil {
		return nil, err
	}
	c.sentEnh[point][k] = out.Clone()
	return out, nil
}

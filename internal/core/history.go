package core

import "fmt"

// Retrospective T-queries: replaying the eq. (5) spatio-temporal join
// over past epochs from a HistorySource (in practice the durable epoch
// log) instead of the live window. The replay runs the same algebra the
// live center runs — per-point temporal join at native width, expansion
// to the maximum width, spatial join — over canonical sketch encodings,
// so a fully-retained window reproduces the live answer bit for bit;
// missing cells (evicted by retention, or lost to faults before they
// ever reached the center) are skipped and reported as reduced Coverage,
// never an error.

// HistorySource yields stored (point, epoch) measurements for replay.
// Cell returns ok=false for a cell the source does not hold — the
// coverage signal. A returned sketch is owned by the caller (the replay
// merges into it).
type HistorySource[S Sketch[S]] interface {
	Cell(point int, epoch int64) (S, bool, error)
}

// QueryAtFrom replays the networkwide T-query answer as of epoch k: the
// join over the same window the live aggregate pushed during k covered
// (epochs k-n+2 .. k-1). Over a fully-retained window the estimate is
// bit-identical to the live answer recorded at k (QueryWindowLive).
func (c *Center[S]) QueryAtFrom(f uint64, k int64, src HistorySource[S]) (float64, Coverage, error) {
	first, last, ok := aggregateSpan(k, c.windowN)
	if !ok {
		return 0, Coverage{}, fmt.Errorf("core: epoch %d has no completed window", k)
	}
	return c.queryEpochsFrom(f, first, last, src)
}

// QueryRangeFrom replays the join over an arbitrary epoch range [from,
// to] — the "any past window" T-query, decoupled from the live window
// length n.
func (c *Center[S]) QueryRangeFrom(f uint64, from, to int64, src HistorySource[S]) (float64, Coverage, error) {
	if from < 1 {
		from = 1
	}
	if to < from {
		return 0, Coverage{}, fmt.Errorf("core: empty epoch range [%d, %d]", from, to)
	}
	return c.queryEpochsFrom(f, from, to, src)
}

// queryEpochsFrom is the shared replay: snapshot the cluster shape
// (children, weights, maximum width) under the lock, then join the
// source's cells lock-free so long-range queries never stall ingest.
func (c *Center[S]) queryEpochsFrom(f uint64, first, last int64, src HistorySource[S]) (float64, Coverage, error) {
	c.mu.Lock()
	ids := make([]int, 0, len(c.protos))
	weights := make(map[int]int, len(c.protos))
	for id := range c.protos {
		ids = append(ids, id)
		weights[id] = c.weightLocked(id)
	}
	wMax := c.wMax
	c.mu.Unlock()

	span := int(last - first + 1)
	var cov Coverage
	var acc S
	haveAcc := false
	for _, id := range ids {
		cov.EpochsExpected += weights[id] * span
		var tj S
		have := false
		for e := first; e <= last; e++ {
			cell, ok, err := src.Cell(id, e)
			if err != nil {
				return 0, cov, fmt.Errorf("core: history cell (%d, %d): %w", id, e, err)
			}
			if !ok {
				continue
			}
			cov.EpochsMerged += weights[id]
			if !have {
				tj = cell
				have = true
				continue
			}
			if err := tj.Merge(cell); err != nil {
				return 0, cov, fmt.Errorf("core: history temporal join point %d epoch %d: %w", id, e, err)
			}
		}
		if !have {
			continue
		}
		ex, err := tj.ExpandTo(wMax)
		if err != nil {
			return 0, cov, fmt.Errorf("core: history expand point %d: %w", id, err)
		}
		if !haveAcc {
			acc = ex
			haveAcc = true
			continue
		}
		if err := acc.Merge(ex); err != nil {
			return 0, cov, fmt.Errorf("core: history spatial join point %d: %w", id, err)
		}
	}
	if !haveAcc {
		return 0, cov, nil
	}
	return acc.EstimateUnion(f, nil), cov, nil
}

// QueryWindowLive answers the networkwide T-query for flow f as of epoch
// k from the live window — the join the center would push during k,
// estimated at the maximum width. This is the "live answer recorded at
// epoch k" the historical replay's exactness contract is defined
// against; callers snapshot it per epoch and later compare QueryAtFrom.
func (c *Center[S]) QueryWindowLive(f uint64, k int64) (float64, Coverage, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	first, last, ok := aggregateSpan(k, c.windowN)
	if !ok {
		return 0, Coverage{}, fmt.Errorf("core: epoch %d has no completed window", k)
	}
	var cov Coverage
	span := int(last - first + 1)
	parts := make(map[int]S, len(c.uploads))
	for id, per := range c.uploads {
		w := c.weightLocked(id)
		cov.EpochsExpected += w * span
		for e := first; e <= last; e++ {
			if _, ok := per[e]; ok {
				cov.EpochsMerged += w
			}
		}
		tj, err := c.temporalJoinLocked(id, first, last)
		if err != nil {
			return 0, cov, err
		}
		parts[id] = tj
	}
	joined, err := c.spatialJoinLocked(parts)
	if err != nil {
		return 0, cov, err
	}
	if IsNil(joined) {
		return 0, cov, nil
	}
	return joined.EstimateUnion(f, nil), cov, nil
}

// MarshalUpload encodes the stored single-epoch measurement for (point,
// epoch) — the uploaded sketch for max-merge designs, the recovered
// delta for additive ones — under the center lock. ok is false when the
// center holds no such cell (not yet uploaded, or already trimmed).
// This is the epoch log's feed: enc must be the canonical encoder so the
// logged bytes are deterministic.
func (c *Center[S]) MarshalUpload(point int, epoch int64, enc func(S) ([]byte, error)) ([]byte, bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	sk, ok := c.uploads[point][epoch]
	if !ok {
		return nil, false, nil
	}
	b, err := enc(sk)
	if err != nil {
		return nil, false, fmt.Errorf("core: marshal upload (%d, %d): %w", point, epoch, err)
	}
	return b, true, nil
}

package core

import (
	"fmt"
	"runtime"
	"sync"
)

// Retrospective T-queries: replaying the eq. (5) spatio-temporal join
// over past epochs from a HistorySource (in practice the durable epoch
// log) instead of the live window. The replay runs the same algebra the
// live center runs over canonical sketch encodings, so a fully-retained
// window reproduces the live answer bit for bit; missing cells (evicted
// by retention, or lost to faults before they ever reached the center)
// are skipped and reported as reduced Coverage, never an error.
//
// The join is assembled epoch-by-epoch rather than point-by-point: each
// epoch's cells are merged at their native widths, expanded to the
// maximum width and spatially joined into one per-epoch partial, and the
// window answer is the merge of its epochs' partials. ExpandTo is
// positional replication and every backend's Merge is element-wise
// (register max / integer counter add), so this regrouping is exactly
// the live answer's register image — and it is what makes the partials
// cacheable (ReplayCache) and the epochs independently computable
// (replayWorkers-bounded parallelism for cold windows).

// HistorySource yields stored (point, epoch) measurements for replay.
// Cell returns ok=false for a cell the source does not hold — the
// coverage signal. A returned sketch is owned by the caller (the replay
// merges into it). Sources must tolerate concurrent readers: a cold
// range replay fans epochs across a worker pool.
type HistorySource[S Sketch[S]] interface {
	Cell(point int, epoch int64) (S, bool, error)
}

// EpochSource is an optional batched fast path a HistorySource may
// implement: EpochCells yields every cell the source retains for one
// epoch across the given points, in any order. The sketch passed to
// visit is borrowed decode scratch — valid only for the duration of the
// call; the replay clones or merges out of it immediately. Implemented
// by the transport's log adapter over durable.Log.GetEpoch, turning a
// window replay's per-cell lookup/read/alloc into one sequential pass
// per segment.
type EpochSource[S Sketch[S]] interface {
	EpochCells(epoch int64, points []int, visit func(point int, sk S) error) error
}

// replayWorkers bounds the per-query worker pool replaying cold epochs.
const replayWorkers = 8

// QueryAtFrom replays the networkwide T-query answer as of epoch k: the
// join over the same window the live aggregate pushed during k covered
// (epochs k-n+2 .. k-1). Over a fully-retained window the estimate is
// bit-identical to the live answer recorded at k (QueryWindowLive).
func (c *Center[S]) QueryAtFrom(f uint64, k int64, src HistorySource[S]) (float64, Coverage, error) {
	first, last, ok := aggregateSpan(k, c.windowN)
	if !ok {
		return 0, Coverage{}, fmt.Errorf("core: epoch %d has no completed window", k)
	}
	return c.queryEpochsFrom(f, first, last, src)
}

// QueryRangeFrom replays the join over an arbitrary epoch range [from,
// to] — the "any past window" T-query, decoupled from the live window
// length n.
func (c *Center[S]) QueryRangeFrom(f uint64, from, to int64, src HistorySource[S]) (float64, Coverage, error) {
	if from < 1 {
		from = 1
	}
	if to < from {
		return 0, Coverage{}, fmt.Errorf("core: empty epoch range [%d, %d]", from, to)
	}
	return c.queryEpochsFrom(f, from, to, src)
}

// epochPartial is one epoch's spatial join at the maximum width, plus
// its coverage share. have is false for an epoch with no retained cells.
type epochPartial[S Sketch[S]] struct {
	sk     S
	have   bool
	merged int
}

// computeEpochPartial joins every retained cell of epoch e across ids:
// cells merge at their native widths first, then each width group
// expands once to wMax and spatially joins — fewer expansions, same
// register bits. It prefers the batched EpochSource pass when src
// implements it.
func computeEpochPartial[S Sketch[S]](e int64, ids []int, weights map[int]int, wMax int, src HistorySource[S]) (epochPartial[S], error) {
	var p epochPartial[S]
	var groups map[int]S
	var order []int
	add := func(id int, cell S, owned bool) error {
		p.merged += weights[id]
		w := cell.Width()
		if g, ok := groups[w]; ok {
			if err := g.Merge(cell); err != nil {
				return fmt.Errorf("core: history temporal join point %d epoch %d: %w", id, e, err)
			}
			return nil
		}
		if groups == nil {
			groups = make(map[int]S, 2)
		}
		if owned {
			groups[w] = cell
		} else {
			groups[w] = cell.Clone()
		}
		order = append(order, w)
		return nil
	}
	if es, ok := src.(EpochSource[S]); ok {
		err := es.EpochCells(e, ids, func(id int, cell S) error {
			return add(id, cell, false)
		})
		if err != nil {
			return p, fmt.Errorf("core: history epoch %d: %w", e, err)
		}
	} else {
		for _, id := range ids {
			cell, ok, err := src.Cell(id, e)
			if err != nil {
				return p, fmt.Errorf("core: history cell (%d, %d): %w", id, e, err)
			}
			if !ok {
				continue
			}
			if err := add(id, cell, true); err != nil {
				return p, err
			}
		}
	}
	for _, w := range order {
		ex, err := groups[w].ExpandTo(wMax)
		if err != nil {
			return p, fmt.Errorf("core: history expand epoch %d width %d: %w", e, w, err)
		}
		if !p.have {
			p.sk = ex
			p.have = true
			continue
		}
		if err := p.sk.Merge(ex); err != nil {
			return p, fmt.Errorf("core: history spatial join epoch %d: %w", e, err)
		}
	}
	return p, nil
}

// queryEpochsFrom is the shared replay: snapshot the cluster shape
// (children, weights, maximum width, topology generation) under the
// lock, then assemble the window from per-epoch partials lock-free so
// long-range queries never stall ingest. With a replay cache attached,
// warm epochs are in-memory merges and only cold epochs touch src —
// those fan out across a bounded worker pool.
func (c *Center[S]) queryEpochsFrom(f uint64, first, last int64, src HistorySource[S]) (float64, Coverage, error) {
	c.mu.Lock()
	ids := make([]int, 0, len(c.protos))
	weights := make(map[int]int, len(c.protos))
	for id := range c.protos {
		ids = append(ids, id)
		weights[id] = c.weightLocked(id)
	}
	wMax := c.wMax
	gen := c.topoGen
	cache := c.replay
	c.mu.Unlock()

	span := int(last - first + 1)
	var cov Coverage
	for _, id := range ids {
		cov.EpochsExpected += weights[id] * span
	}

	var verSum uint64
	if cache != nil {
		if ans, ok := cache.lookupWindow(f, first, last, gen); ok {
			return ans.est, ans.cov, nil
		}
		// Snapshot before touching partials: if any epoch in the window
		// is invalidated between here and insertWindow, the memo insert
		// is discarded.
		verSum = cache.versionSum(first, last)
	}

	type slot struct {
		p      epochPartial[S]
		cached bool
		ver    uint64
	}
	slots := make([]slot, span)
	var cold []int
	for i := range slots {
		e := first + int64(i)
		if cache != nil {
			if sk, merged, have, ok := cache.lookupPartial(e, gen); ok {
				slots[i] = slot{p: epochPartial[S]{sk: sk, have: have, merged: merged}, cached: true}
				continue
			}
			slots[i].ver = cache.version(e)
		}
		cold = append(cold, i)
	}

	workers := len(cold)
	if mp := runtime.GOMAXPROCS(0); workers > mp {
		workers = mp
	}
	if workers > replayWorkers {
		workers = replayWorkers
	}
	var firstErr error
	if workers <= 1 {
		for _, i := range cold {
			p, err := computeEpochPartial(first+int64(i), ids, weights, wMax, src)
			if err != nil {
				return 0, cov, err
			}
			slots[i].p = p
		}
	} else {
		var wg sync.WaitGroup
		var errMu sync.Mutex
		work := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range work {
					p, err := computeEpochPartial(first+int64(i), ids, weights, wMax, src)
					if err != nil {
						errMu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						errMu.Unlock()
						continue
					}
					slots[i].p = p
				}
			}()
		}
		for _, i := range cold {
			work <- i
		}
		close(work)
		wg.Wait()
		if firstErr != nil {
			return 0, cov, firstErr
		}
	}

	// Publish cold partials. Once inserted the sketch is shared, so the
	// final assembly below only reads it (first use clones).
	if cache != nil {
		for _, i := range cold {
			p := slots[i].p
			cost := int64(64)
			if p.have {
				if b, err := p.sk.MarshalBinary(); err == nil {
					cost += int64(len(b))
				}
			}
			cache.insertPartial(first+int64(i), gen, slots[i].ver, p.sk, p.have, p.merged, cost)
		}
	}

	var acc S
	haveAcc := false
	for i := range slots {
		p := slots[i].p
		cov.EpochsMerged += p.merged
		if !p.have {
			continue
		}
		if !haveAcc {
			acc = p.sk.Clone()
			haveAcc = true
			continue
		}
		if err := acc.Merge(p.sk); err != nil {
			return 0, cov, fmt.Errorf("core: history window join epoch %d: %w", first+int64(i), err)
		}
	}
	if !haveAcc {
		return 0, cov, nil
	}
	est := acc.EstimateUnion(f, nil)
	if cache != nil {
		cache.insertWindow(windowKey{f, first, last, gen}, windowAnswer{est, cov}, verSum)
	}
	return est, cov, nil
}

// QueryWindowLive answers the networkwide T-query for flow f as of epoch
// k from the live window — the join the center would push during k,
// estimated at the maximum width. This is the "live answer recorded at
// epoch k" the historical replay's exactness contract is defined
// against; callers snapshot it per epoch and later compare QueryAtFrom.
func (c *Center[S]) QueryWindowLive(f uint64, k int64) (float64, Coverage, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	first, last, ok := aggregateSpan(k, c.windowN)
	if !ok {
		return 0, Coverage{}, fmt.Errorf("core: epoch %d has no completed window", k)
	}
	var cov Coverage
	span := int(last - first + 1)
	parts := make(map[int]S, len(c.uploads))
	for id, per := range c.uploads {
		w := c.weightLocked(id)
		cov.EpochsExpected += w * span
		for e := first; e <= last; e++ {
			if _, ok := per[e]; ok {
				cov.EpochsMerged += w
			}
		}
		tj, err := c.temporalJoinLocked(id, first, last)
		if err != nil {
			return 0, cov, err
		}
		parts[id] = tj
	}
	joined, err := c.spatialJoinLocked(parts)
	if err != nil {
		return 0, cov, err
	}
	if IsNil(joined) {
		return 0, cov, nil
	}
	return joined.EstimateUnion(f, nil), cov, nil
}

// MarshalUpload encodes the stored single-epoch measurement for (point,
// epoch) — the uploaded sketch for max-merge designs, the recovered
// delta for additive ones — under the center lock. ok is false when the
// center holds no such cell (not yet uploaded, or already trimmed).
// This is the epoch log's feed: enc must be the canonical encoder so the
// logged bytes are deterministic.
func (c *Center[S]) MarshalUpload(point int, epoch int64, enc func(S) ([]byte, error)) ([]byte, bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	sk, ok := c.uploads[point][epoch]
	if !ok {
		return nil, false, nil
	}
	b, err := enc(sk)
	if err != nil {
		return nil, false, fmt.Errorf("core: marshal upload (%d, %d): %w", point, epoch, err)
	}
	return b, true, nil
}

package core

import "errors"

// ErrStaleEpoch reports that a center push arrived after its target epoch
// had already ended at the point. The protocol's correctness rests on the
// paper's timing assumption (ST join plus round trip complete within one
// epoch); a stale push must be dropped rather than merged into the wrong
// window. For the flow-size design in cumulative mode a dropped push also
// desynchronizes the center's recovery, so deployments should treat it as
// an operational alarm.
var ErrStaleEpoch = errors.New("core: center push missed its epoch")

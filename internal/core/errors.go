package core

import "errors"

// ErrStaleEpoch reports that a center push arrived after its target epoch
// had already ended at the point. The protocol's correctness rests on the
// paper's timing assumption (ST join plus round trip complete within one
// epoch); a stale push must be dropped rather than merged into the wrong
// window. The upload-applied flags (UploadMeta) tell the center the push
// was not merged, so the flow-size design's cumulative recovery stays
// exact; the point's Coverage reports the resulting window hole.
var ErrStaleEpoch = errors.New("core: center push missed its epoch")

// ErrDuplicatePush reports that a center push targeted an epoch whose
// aggregate (or enhancement) the point already merged. The center re-pushes
// the current round to reconnecting points, so duplicates are a normal
// consequence of recovery; they must be dropped, not merged twice (the
// flow-size design's counter addition is not idempotent).
var ErrDuplicatePush = errors.New("core: duplicate center push for this epoch")

// ErrDuplicateUpload reports that a point upload for an already-ingested
// epoch was dropped. Retransmission after a partial connection failure can
// resend an upload the center already has; ingesting it twice would
// double-count, so the center ignores it and reports this sentinel for
// observability.
var ErrDuplicateUpload = errors.New("core: duplicate point upload ignored")

// ErrUploadGap reports that a cumulative-mode size upload arrived after a
// gap in the point's epoch sequence. The cumulative inversion (Section V-B)
// needs the previous epoch's recovered delta, so post-gap uploads carry no
// recoverable measurement until the point sends a rebase upload; the center
// drops their payload (window coverage shrinks accordingly) and waits for
// the rebase.
var ErrUploadGap = errors.New("core: upload after epoch gap dropped pending rebase")

package core

// Coverage quantifies how much of the eq. (1)/(2) window a point's query
// target actually contains. The center part of the window is the union of
// point-epochs {(x, e) : all points x, e in [k-n+1, k-2]} during epoch k;
// when the protocol degrades (center outage, lost uploads, dropped pushes)
// some of those point-epochs never reach the point, and a query answers
// from what survived instead of silently pretending the window is whole.
//
// EpochsExpected counts the point-epochs a healthy deployment would have
// merged (points × window epochs, clamped at cluster start-up);
// EpochsMerged counts how many the applied aggregate actually contained.
// Local epochs are always present (they never cross the network) and are
// not counted on either side.
type Coverage struct {
	// EpochsMerged is the number of point-epoch uploads represented in
	// the aggregate backing the current query target.
	EpochsMerged int
	// EpochsExpected is the number of point-epoch uploads eq. (1)/(2)
	// calls for at the current epoch.
	EpochsExpected int
}

// Fraction returns EpochsMerged/EpochsExpected, or 1 when nothing is
// expected (standalone points, cluster start-up before the first full
// window).
func (c Coverage) Fraction() float64 {
	if c.EpochsExpected <= 0 {
		return 1
	}
	f := float64(c.EpochsMerged) / float64(c.EpochsExpected)
	if f > 1 {
		return 1
	}
	return f
}

// Full reports whether the query target holds the entire expected window.
func (c Coverage) Full() bool { return c.EpochsMerged >= c.EpochsExpected }

// aggregateSpan returns the inclusive epoch range [first, last] the
// center's aggregate pushed during epoch k covers (eq. (5)): k-n+2 .. k-1,
// clamped to real epochs (>= 1). It returns ok=false when the range is
// empty (cluster start-up).
func aggregateSpan(k int64, windowN int) (first, last int64, ok bool) {
	first, last = k-int64(windowN)+2, k-1
	if first < 1 {
		first = 1
	}
	return first, last, first <= last
}

// expectedPointEpochs is the number of point-epochs the aggregate applied
// during epoch k should carry for a cluster of the given size.
func expectedPointEpochs(points, windowN int, k int64) int {
	if points <= 0 || windowN <= 0 {
		return 0
	}
	first, last, ok := aggregateSpan(k, windowN)
	if !ok {
		return 0
	}
	return points * int(last-first+1)
}

package core

// Point-side durability helpers. RestoreSnapshot restores the sketch set
// but deliberately assumes a healthy lineage (all pushes applied, coverage
// whole) — the right call for a clean shutdown/restart. A crash-recovery
// checkpoint cannot afford that optimism: whether the center's aggregate
// was merged into C' decides whether a re-pushed aggregate must be applied
// or rejected as a duplicate, and the coverage shown to queries must
// reflect what the window really held. PointMeta captures that accounting
// so a checkpoint restore is honest; ResetWindow and ApplyBackfillCovAt
// implement the center-assisted backfill a point runs when its restored
// window predates the cluster clock.

// PointMeta is the degradation-accounting state of a measurement point:
// the push-lineage flags, the staged aggregate's coverage, and the current
// query target's coverage. Together with a sketch snapshot it forms a
// complete, honest checkpoint of the point.
type PointMeta struct {
	// TopoPoints and TopoN mirror SetTopology.
	TopoPoints int
	TopoN      int
	// AggApplied/EnhApplied record whether this epoch's center pushes were
	// merged (into C' and C respectively). AggAppliedPrev is the additive
	// designs' one-epoch memory of AggApplied (the cumulative upload C_e
	// carries the aggregate applied during e-1); the spread design ignores
	// it. Backfilled records whether a restart backfill was merged into C
	// this epoch.
	AggApplied     bool
	AggAppliedPrev bool
	EnhApplied     bool
	Backfilled     bool
	// CovMerged is the point-epoch count of the aggregate staged in C'
	// (-1 = applied without coverage info).
	CovMerged int
	// Cov is the coverage of the current query target C.
	Cov Coverage
}

// Meta returns the point's degradation-accounting state, read atomically.
// AggAppliedPrev stays false for non-additive designs, which never set it.
func (p *Point[S]) Meta() PointMeta {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PointMeta{
		TopoPoints:     p.topoPoints,
		TopoN:          p.topoN,
		AggApplied:     p.aggApplied,
		AggAppliedPrev: p.aggAppliedPrev,
		EnhApplied:     p.enhApplied,
		Backfilled:     p.backfilled,
		CovMerged:      p.covMerged,
		Cov:            p.covCur,
	}
}

// RestoreMeta overwrites the point's degradation accounting, typically
// right after RestoreSnapshot replaced the sketches with a checkpoint
// (undoing RestoreSnapshot's healthy-lineage assumption).
func (p *Point[S]) RestoreMeta(m PointMeta) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.topoPoints, p.topoN = m.TopoPoints, m.TopoN
	p.aggApplied = m.AggApplied
	p.aggAppliedPrev = m.AggAppliedPrev
	p.enhApplied = m.EnhApplied
	p.backfilled = m.Backfilled
	p.covMerged = m.CovMerged
	p.covCur = m.Cov
}

// ResetWindow zeroes the point's whole sketch set (B, C, C' and the ingest
// shards) and resets coverage to empty at the current epoch. A point whose
// restored checkpoint predates the cluster clock calls it after AdvanceTo:
// the stale window must not pollute the backfilled one the center is about
// to send (merging an old C under a new epoch would double-count epochs
// the backfill aggregate already contains).
func (p *Point[S]) ResetWindow() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !IsNil(p.b) {
		p.b.Reset()
	}
	p.c.Reset()
	p.cp.Reset()
	for _, sh := range p.shards {
		sh.mu.Lock()
		sh.d.Reset()
		sh.dirty.Store(false)
		sh.mu.Unlock()
	}
	p.covCur = Coverage{EpochsExpected: expectedPointEpochs(p.topoPoints, p.topoN, p.epoch-1)}
	p.covMerged = 0
	p.aggApplied, p.aggAppliedPrev, p.enhApplied, p.backfilled = false, false, false, false
}

// ApplyBackfillCovAt merges a center-resent aggregate for the missed epoch
// k-1 directly into the current query target C, restoring the window a
// restarted point lost. Unlike ApplyAggregateCovAt (which stages into C'
// for the next epoch), the backfill takes effect immediately: coverage of
// the current window jumps to what the center joined. Guarded like the
// other push appliers: ErrStaleEpoch if the point moved past epoch k,
// ErrDuplicatePush if a backfill was already merged this epoch. merged < 0
// means "coverage unknown, assume whole".
//
// In cumulative mode the backfill inflates C with epochs the center
// already holds, so the next upload MUST be a rebase (EndEpochMeta(true))
// — the transport layer arranges that whenever a restart advanced the
// epoch clock.
func (p *Point[S]) ApplyBackfillCovAt(k int64, agg S, merged int) error {
	if IsNil(agg) {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.epoch != k {
		return ErrStaleEpoch
	}
	if p.backfilled {
		return ErrDuplicatePush
	}
	if err := p.c.Merge(agg); err != nil {
		return err
	}
	p.backfilled = true
	p.covCur = backfillCoverage(p.topoPoints, p.topoN, k, merged)
	return nil
}

// backfillCoverage is the coverage of a window rebuilt from the aggregate
// the center pushed during epoch k-1 (span [k-n+1, k-2] — exactly the
// center part of epoch k's window).
func backfillCoverage(points, windowN int, k int64, merged int) Coverage {
	exp := expectedPointEpochs(points, windowN, k-1)
	if merged < 0 || merged > exp {
		merged = exp
	}
	return Coverage{EpochsMerged: merged, EpochsExpected: exp}
}

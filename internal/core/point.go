package core

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// The generic measurement point: the single implementation of the
// point-side epoch engine. The paper describes two designs — three-sketch
// spread (Section IV) and two-sketch size (Section V) — whose epoch
// choreography is identical: record locally, upload at the epoch boundary,
// copy C' to C, merge the center's pushes into C'/C. Everything that
// differs is captured by EngineConfig (upload mode, merge additivity) and
// the Sketch algebra; SpreadPoint and SizePoint are thin instantiations.

// atomicSketch is the optional lock-free ingest capability of a sketch
// backend. A backend that implements it (the spread design's rskt, whose
// merge algebra is an idempotent max) records into shard deltas without
// any lock: RecordAtomic's fast path is a fence-free load that skips
// saturated registers, and DrainAtomicInto folds a delta by atomically
// swapping each word out, so no concurrent observe is ever lost. Backends
// without it (countmin — counter addition has no no-op fast path) keep
// the per-shard mutex.
type atomicSketch[S any] interface {
	// RecordAtomic inserts <f, e>, reporting whether sketch state changed.
	// Must be safe against concurrent RecordAtomic/DrainAtomicInto and the
	// backend's union estimator.
	RecordAtomic(f, e uint64) bool
	// DrainAtomicInto atomically moves all recorded state into the
	// destinations (any of which may be the zero S), leaving the receiver
	// empty. Equivalent to merge-into-each plus reset.
	DrainAtomicInto(b, c, cp S)
}

// pointShard is one ingest shard of a measurement point: a delta sketch
// receiving a slice of the record stream, folded into B/C/C' with the
// design's merge algebra at the fold points (see shard.go). ad is d's
// lock-free capability (nil for locked backends); when set, mu guards
// nothing — every access to d goes through ad or the backend's atomic
// reads.
//
// The hot words (mu, dirty) sit in the struct's first cache line and the
// tail pad makes the allocation span at least a full line, so two shards
// allocated back to back never put their hot words on one line. Without
// the pad the struct is ~40 bytes — Go's 48-byte size class — and
// adjacent shards false-share: every Record's lock or dirty-check then
// invalidates the neighboring shard's line and the striped path
// serializes on coherence traffic instead of scaling (the BENCH_PR5
// ThroughputParallel collapse; see DESIGN.md §12).
type pointShard[S Sketch[S]] struct {
	mu    sync.Mutex
	dirty atomic.Bool // set on record, cleared on fold; lets readers skip clean shards
	d     S
	ad    atomicSketch[S]
	_     [64]byte // keep the next allocation's hot head off our tail line
}

// Point is one measurement point of the generic epoch engine. It is safe
// for concurrent use: the record path is lock-striped across shards, so the
// live transport's recorders do not serialize behind the point mutex while
// aggregates arrive from the center.
type Point[S Sketch[S]] struct {
	mu sync.Mutex // guards epoch and the authoritative sketch set

	id       int
	design   string // names the instantiation in error messages
	mode     Mode
	additive bool
	fresh    func() S
	epoch    int64 // current epoch k (1-based)

	b  S // per-epoch measurement (ModeDelta only; zero otherwise)
	c  S // query target (holds the approximate T-stream); the upload in cumulative mode
	cp S // C': staging for the next epoch

	// Degradation accounting (see coverage.go and protocol.go).
	// topoPoints/topoN describe the cluster (0 = standalone, coverage
	// always reports full); aggApplied/enhApplied guard against duplicate
	// center pushes within one epoch; covMerged is the point-epoch count of
	// the aggregate staged in C' (-1 = applied without coverage info,
	// assume full); covCur is the coverage of the current query target C.
	// aggAppliedPrev (additive designs only) remembers whether the
	// aggregate was merged during the previous epoch: the cumulative
	// upload C_e carries the aggregate applied during e-1, so its
	// UploadMeta needs one epoch of memory.
	topoPoints, topoN int
	aggApplied        bool
	aggAppliedPrev    bool
	enhApplied        bool
	// backfilled guards against duplicate backfill pushes (a center-sent
	// aggregate merged directly into C after a restart; see
	// ApplyBackfillCovAt). Reset at every epoch boundary.
	backfilled bool
	covMerged  int
	covCur     Coverage

	shards []*pointShard[S]

	// recs are the registered per-core ingest pipelines (recorder.go),
	// folded at the same fold points as the shards. Guarded by mu; the
	// record path never touches this slice (each worker holds its own
	// *Recorder).
	recs []*Recorder[S]

	// rr is the round-robin cursor for batch shard selection — a shared
	// mutable word on the legacy sharded batch path, padded so recorders
	// hammering it don't false-share with the point's mutex or the shard
	// slice header above.
	_  [64]byte
	rr atomic.Uint64
	_  [56]byte
}

// NewPoint creates a measurement point whose sketches are built by fresh
// (called two or three times plus once per ingest shard up front, and once
// per epoch for the new upload sketch in delta mode), with the design
// discipline fixed by cfg.
func NewPoint[S Sketch[S]](id int, fresh func() S, cfg EngineConfig[S]) (*Point[S], error) {
	if fresh == nil {
		return nil, fmt.Errorf("core: nil sketch constructor for point %d", id)
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	p := &Point[S]{
		id:       id,
		design:   cfg.Design,
		mode:     cfg.Mode,
		additive: cfg.Additive,
		fresh:    fresh,
		epoch:    1,
		c:        fresh(),
		cp:       fresh(),
		shards:   make([]*pointShard[S], normShards(cfg.Shards)),
	}
	if cfg.Mode == ModeDelta {
		p.b = fresh()
	}
	for i := range p.shards {
		sh := &pointShard[S]{d: fresh()}
		if ad, ok := any(sh.d).(atomicSketch[S]); ok {
			sh.ad = ad
		}
		p.shards[i] = sh
	}
	return p, nil
}

// ID returns the point's identifier.
func (p *Point[S]) ID() int { return p.id }

// Mode returns the upload mode.
func (p *Point[S]) Mode() Mode { return p.mode }

// Epoch returns the current (1-based) epoch index.
func (p *Point[S]) Epoch() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.epoch
}

// SetTopology tells the point how large its cluster is (point count and
// window n), which is what Coverage measures queries against. A standalone
// point (the default) expects nothing and always reports full coverage.
func (p *Point[S]) SetTopology(points, windowN int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.topoPoints, p.topoN = points, windowN
}

// AdvanceTo fast-forwards the point's epoch clock without touching sketch
// state. A point that restarts without persisted state rejoins its cluster
// at the cluster's current epoch; everything before it is gone, so the
// current window's coverage is reset to empty.
func (p *Point[S]) AdvanceTo(epoch int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if epoch <= p.epoch {
		return
	}
	p.epoch = epoch
	p.covCur = Coverage{EpochsExpected: expectedPointEpochs(p.topoPoints, p.topoN, epoch-1)}
	p.covMerged = 0
	p.aggApplied, p.aggAppliedPrev, p.enhApplied, p.backfilled = false, false, false, false
}

// Coverage returns the eq. (1)/(2) window coverage of the current query
// target (see Coverage).
func (p *Point[S]) Coverage() Coverage {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.covCur
}

// Record inserts packet <f, e> (stage 1, local online recording). Only the
// flow's ingest shard is touched — one sketch update instead of two or
// three; the delta reaches the authoritative set at the next fold point.
func (p *Point[S]) Record(f, e uint64) {
	sh := p.shards[shardOf(f, len(p.shards))]
	if sh.ad != nil {
		// Lock-free path: the dirty flag is raised only after the write
		// is published, so a query that runs after Record returns either
		// folds this shard or already sees the value in C.
		if sh.ad.RecordAtomic(f, e) && !sh.dirty.Load() {
			sh.dirty.Store(true)
		}
		return
	}
	sh.mu.Lock()
	sh.d.Record(f, e)
	if !sh.dirty.Load() {
		sh.dirty.Store(true)
	}
	sh.mu.Unlock()
}

// RecordBatch inserts a batch of packets. The whole batch lands in a
// single shard under a single lock acquisition (round-robin with try-lock
// steering away from busy shards), amortizing synchronization to one
// atomic and one lock per batch.
func (p *Point[S]) RecordBatch(ps []SpreadPacket) {
	if len(ps) == 0 {
		return
	}
	if sh := p.batchShard(); sh.ad != nil {
		wrote := false
		for _, q := range ps {
			if sh.ad.RecordAtomic(q.Flow, q.Elem) {
				wrote = true
			}
		}
		if wrote && !sh.dirty.Load() {
			sh.dirty.Store(true)
		}
		return
	}
	sh := p.lockShard()
	for _, q := range ps {
		sh.d.Record(q.Flow, q.Elem)
	}
	if !sh.dirty.Load() {
		sh.dirty.Store(true)
	}
	sh.mu.Unlock()
}

// RecordBatchFlows is RecordBatch over bare flow keys (element zero), for
// designs that ignore which element arrived.
func (p *Point[S]) RecordBatchFlows(fs []uint64) {
	if len(fs) == 0 {
		return
	}
	if sh := p.batchShard(); sh.ad != nil {
		wrote := false
		for _, f := range fs {
			if sh.ad.RecordAtomic(f, 0) {
				wrote = true
			}
		}
		if wrote && !sh.dirty.Load() {
			sh.dirty.Store(true)
		}
		return
	}
	sh := p.lockShard()
	for _, f := range fs {
		sh.d.Record(f, 0)
	}
	if !sh.dirty.Load() {
		sh.dirty.Store(true)
	}
	sh.mu.Unlock()
}

// batchShard picks a shard for a batch (round-robin) without locking it.
func (p *Point[S]) batchShard() *pointShard[S] {
	return p.shards[int(p.rr.Add(1)-1)%len(p.shards)]
}

// lockShard picks and locks an ingest shard for a batch: round-robin start,
// try-lock probing past shards another recorder holds.
func (p *Point[S]) lockShard() *pointShard[S] {
	n := len(p.shards)
	start := int(p.rr.Add(1)-1) % n
	for i := 0; i < n; i++ {
		sh := p.shards[(start+i)%n]
		if sh.mu.TryLock() {
			return sh
		}
	}
	sh := p.shards[start]
	sh.mu.Lock()
	return sh
}

// Query answers the approximate real-time networkwide T-query for flow f
// from the local C sketch plus the not-yet-folded shard deltas. The
// on-the-fly fold (the algebra's union along f's row positions only) makes
// the answer bit-identical to the serial single-sketch path. Estimator
// noise can make spread answers slightly negative; callers needing counts
// should clamp at zero.
func (p *Point[S]) Query(f uint64) float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.queryLocked(f)
}

// QueryWithCoverage answers Query(f) together with the coverage of the
// window the answer was computed from, read atomically so the pair is
// consistent across a concurrent epoch boundary.
func (p *Point[S]) QueryWithCoverage(f uint64) (float64, Coverage) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.queryLocked(f), p.covCur
}

func (p *Point[S]) queryLocked(f uint64) float64 {
	var (
		stackExtras [maxShards + 4]S
		stackMu     [maxShards + 4]*sync.Mutex
	)
	extras, locked := stackExtras[:0], stackMu[:0]
	for _, sh := range p.shards {
		if !sh.dirty.Load() {
			continue
		}
		// Lock-free deltas are read live: the backend's union estimator
		// loads their registers atomically, so no lock is needed.
		if sh.ad == nil {
			sh.mu.Lock()
			locked = append(locked, &sh.mu)
		}
		extras = append(extras, sh.d)
	}
	// Recorder deltas are written with plain stores under the recorder's
	// mutex, so the fold holds it for the read regardless of backend.
	for _, r := range p.recs {
		if !r.dirty.Load() {
			continue
		}
		r.mu.Lock()
		locked = append(locked, &r.mu)
		extras = append(extras, r.d)
	}
	est := p.c.EstimateUnion(f, extras)
	for _, mu := range locked {
		mu.Unlock()
	}
	return est
}

// foldDeltaLocked merges one ingest delta into the authoritative sketch
// set (C, C' and, in delta mode, B) with the design's merge algebra.
// Caller holds p.mu plus whatever guards the delta.
func (p *Point[S]) foldDeltaLocked(d S) {
	if !IsNil(p.b) {
		mustMerge(p.b, d)
	}
	mustMerge(p.c, d)
	mustMerge(p.cp, d)
}

// flushIngestLocked folds every dirty ingest delta — the striped shards
// and the per-core recorder pipelines — into the authoritative sketch set
// and resets it. Caller holds p.mu.
func (p *Point[S]) flushIngestLocked() {
	for _, sh := range p.shards {
		if !sh.dirty.Load() {
			continue
		}
		if sh.ad != nil {
			// Clear dirty before draining: an observe landing after a
			// word is swapped out re-raises the flag, so the fresh delta
			// is never left dirty=false with data in it.
			sh.dirty.Store(false)
			sh.ad.DrainAtomicInto(p.b, p.c, p.cp)
			continue
		}
		sh.mu.Lock()
		p.foldDeltaLocked(sh.d)
		sh.d.Reset()
		sh.dirty.Store(false)
		sh.mu.Unlock()
	}
	for _, r := range p.recs {
		if !r.dirty.Load() {
			continue
		}
		r.mu.Lock()
		p.foldDeltaLocked(r.d)
		r.d.Reset()
		r.dirty.Store(false)
		r.mu.Unlock()
	}
}

// EndEpoch performs the epoch-boundary actions (stage 2, local periodical
// measurement update) and returns the upload for the epoch that just
// ended: the per-epoch B in delta mode, or the cumulative C in cumulative
// mode. The returned sketch is owned by the caller.
//
// The upload is taken by pointer swap, not by cloning under the lock: the
// epoch boundary costs the shard fold plus one allocation instead of a
// full sketch copy ("copy C' to C, reset C'" becomes swap-then-reset in
// delta mode). Recorders are never blocked by the boundary: they only
// touch shard deltas, which are folded one shard at a time.
func (p *Point[S]) EndEpoch() S {
	upload, _ := p.EndEpochMeta(false)
	return upload
}

// EndEpochMeta is EndEpoch returning the upload's protocol metadata (which
// center pushes its lineage absorbed — see UploadMeta; only additive
// designs track lineage, a max-merge upload is safe to re-merge blindly).
// With rebase set, a cumulative-mode point uploads a clone of C' instead
// of C: C' holds only the finished epoch's delta plus the aggregate
// applied during it, letting the center reseed its recovery chain after
// the point lost buffered uploads. Rebase is meaningless (and ignored) in
// delta mode.
func (p *Point[S]) EndEpochMeta(rebase bool) (S, UploadMeta) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.flushIngestLocked()
	meta := UploadMeta{Epoch: p.epoch}
	var upload S
	if p.mode == ModeCumulative {
		if rebase {
			meta.Rebase = true
			meta.AggApplied = p.aggApplied
			upload = p.cp.Clone()
			p.c = p.cp
			p.cp = p.fresh()
		} else {
			if p.additive {
				meta.AggApplied = p.aggAppliedPrev
				meta.EnhApplied = p.enhApplied
			}
			upload = p.c
			p.c = p.cp
			p.cp = p.fresh()
		}
	} else {
		if p.additive {
			meta.AggApplied = p.aggAppliedPrev
			meta.EnhApplied = p.enhApplied
		}
		upload = p.b
		p.b = p.fresh()
		p.c, p.cp = p.cp, p.c
		p.cp.Reset()
	}
	p.rollCoverageLocked()
	p.epoch++
	return upload, meta
}

// rollCoverageLocked moves the staged aggregate's coverage onto the query
// target (C' becomes C at this boundary) and opens a fresh slot for the
// next epoch's push. Caller holds p.mu with p.epoch still the epoch that
// is ending.
func (p *Point[S]) rollCoverageLocked() {
	exp := expectedPointEpochs(p.topoPoints, p.topoN, p.epoch)
	m := p.covMerged
	if m < 0 || m > exp {
		// Aggregate applied through the coverage-oblivious path: trust it
		// to be whole.
		m = exp
	}
	p.covCur = Coverage{EpochsMerged: m, EpochsExpected: exp}
	p.covMerged = 0
	if p.additive {
		// One epoch of memory for the cumulative upload's lineage flag.
		p.aggAppliedPrev = p.aggApplied
	}
	p.aggApplied, p.enhApplied, p.backfilled = false, false, false
}

// ApplyAggregate merges the center's ST-join result (the networkwide join
// of the window's completed epochs, customized to this point's width) into
// C' (Task 3). A nil aggregate is a no-op.
func (p *Point[S]) ApplyAggregate(agg S) error {
	if IsNil(agg) {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.cp.Merge(agg); err != nil {
		return fmt.Errorf("%s point %d: apply aggregate: %w", p.design, p.id, err)
	}
	p.aggApplied = true
	p.covMerged = -1
	return nil
}

// ApplyEnhancement merges the peers' last-completed-epoch join directly
// into C (the Section IV-D enhancement), tightening the current epoch's
// answers toward the exact networkwide T-query. In cumulative mode the
// center compensates for this at recovery time.
func (p *Point[S]) ApplyEnhancement(enh S) error {
	if IsNil(enh) {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.c.Merge(enh); err != nil {
		return fmt.Errorf("%s point %d: apply enhancement: %w", p.design, p.id, err)
	}
	p.enhApplied = true
	return nil
}

// ApplyAggregateAt is ApplyAggregate guarded by an epoch check performed
// under the point's lock: the merge happens only if the point is still in
// epoch k. Returns ErrStaleEpoch otherwise (the push missed the round-trip
// bound and must be dropped, not merged into the wrong window), and
// ErrDuplicatePush if this epoch's aggregate was already merged (a
// reconnect re-push — in an additive design merging twice would double the
// counters).
func (p *Point[S]) ApplyAggregateAt(k int64, agg S) error {
	return p.applyAggregateAt(k, agg, -1)
}

// ApplyAggregateCovAt is ApplyAggregateAt carrying the aggregate's
// coverage: how many point-epoch uploads the center actually joined into
// it. Queries answered from the window this aggregate lands in report that
// coverage (QueryWithCoverage).
func (p *Point[S]) ApplyAggregateCovAt(k int64, agg S, merged int) error {
	return p.applyAggregateAt(k, agg, merged)
}

func (p *Point[S]) applyAggregateAt(k int64, agg S, merged int) error {
	if IsNil(agg) {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.epoch != k {
		return ErrStaleEpoch
	}
	if p.aggApplied {
		return ErrDuplicatePush
	}
	if err := p.cp.Merge(agg); err != nil {
		return fmt.Errorf("%s point %d: apply aggregate: %w", p.design, p.id, err)
	}
	p.aggApplied = true
	p.covMerged = merged
	return nil
}

// ApplyEnhancementAt is ApplyEnhancement guarded by an epoch check under
// the point's lock, with the same duplicate-push guard as
// ApplyAggregateAt.
func (p *Point[S]) ApplyEnhancementAt(k int64, enh S) error {
	if IsNil(enh) {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.epoch != k {
		return ErrStaleEpoch
	}
	if p.enhApplied {
		return ErrDuplicatePush
	}
	if err := p.c.Merge(enh); err != nil {
		return fmt.Errorf("%s point %d: apply enhancement: %w", p.design, p.id, err)
	}
	p.enhApplied = true
	return nil
}

package core

import (
	"sync"
	"testing"

	"repro/internal/countmin"
	"repro/internal/rskt"
)

// The per-core ingest pipeline must be (a) race-clean against concurrent
// queries, epoch folds and center pushes, and (b) bit-identical to the
// serial single-goroutine path after every fold — the run-to-completion
// deltas reach B/C/C' through the same merge algebra as the shards, so
// any divergence is a bug, not estimator noise.

func TestSpreadRecorderMatchesSequential(t *testing.T) {
	params := rskt.Params{W: 64, M: 32, Seed: 7}
	const packets, flows, workers = 20_000, 300, 4

	seq, err := NewSpreadPointShardsOf(0, func() *rskt.Sketch { return rskt.New(params) }, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewSpreadPointShardsOf(0, func() *rskt.Sketch { return rskt.New(params) }, 1)
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < packets; i++ {
		seq.Record(uint64(i%flows), uint64(i))
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rec := par.NewRecorder()
			for i := w; i < packets; i += workers {
				rec.Record(uint64(i%flows), uint64(i))
			}
			rec.Flush()
		}(w)
	}
	wg.Wait()

	for f := uint64(0); f < flows; f++ {
		if got, want := par.Query(f), seq.Query(f); got != want {
			t.Fatalf("flow %d: pipeline %v, sequential %v", f, got, want)
		}
	}
	// The epoch upload (the folded B delta) must match bit for bit too.
	upSeq, upPar := seq.EndEpoch(), par.EndEpoch()
	if !upSeq.Equal(upPar) {
		t.Fatal("pipeline epoch upload differs from sequential")
	}
}

func TestSizeRecorderMatchesSequential(t *testing.T) {
	params := countmin.Params{D: 4, W: 512, Seed: 7}
	const packets, flows, workers = 20_000, 300, 4

	mk := func() *Point[*countmin.Sketch] {
		pt, err := NewPoint(0, func() *countmin.Sketch { return countmin.New(params) },
			EngineConfig[*countmin.Sketch]{Design: "size", Mode: ModeCumulative, Additive: true, Shards: 1})
		if err != nil {
			t.Fatal(err)
		}
		return pt
	}
	seq, par := mk(), mk()

	for i := 0; i < packets; i++ {
		seq.Record(uint64(i%flows), 0)
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rec := par.NewRecorder()
			// Exercise both the buffered-single and the batch entry points.
			var batch []SpreadPacket
			for i := w; i < packets; i += workers {
				if i%3 == 0 {
					batch = append(batch, SpreadPacket{Flow: uint64(i % flows)})
					if len(batch) == 100 {
						rec.RecordBatch(batch)
						batch = batch[:0]
					}
				} else {
					rec.Record(uint64(i%flows), 0)
				}
			}
			rec.RecordBatch(batch)
			rec.Flush()
		}(w)
	}
	wg.Wait()

	for f := uint64(0); f < flows; f++ {
		if got, want := par.Query(f), seq.Query(f); got != want {
			t.Fatalf("flow %d: pipeline %v, sequential %v", f, got, want)
		}
	}
	upSeq, upPar := seq.EndEpoch(), par.EndEpoch()
	if !upSeq.Equal(upPar) {
		t.Fatal("pipeline epoch upload differs from sequential")
	}
}

// TestRecorderEpochBoundaryMidStream rolls epochs from one goroutine
// while pipeline workers record: every packet must land in exactly one
// epoch's fold (never lost, never duplicated), so the union of all epoch
// uploads must equal the sequential union. Uses the spread design, whose
// max-merge makes the union order-independent.
func TestRecorderEpochBoundaryMidStream(t *testing.T) {
	params := rskt.Params{W: 64, M: 32, Seed: 9}
	const packets, flows, workers, epochs = 30_000, 200, 3, 7

	par, err := NewSpreadPointShardsOf(0, func() *rskt.Sketch { return rskt.New(params) }, 1)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rec := par.NewRecorder()
			for i := w; i < packets; i += workers {
				rec.Record(uint64(i%flows), uint64(i))
			}
			rec.Flush()
		}(w)
	}
	// Epoch boundaries land mid-batch: EndEpoch folds whatever the
	// pipelines have applied so far.
	uploads := make([]*rskt.Sketch, 0, epochs+1)
	for k := 0; k < epochs; k++ {
		uploads = append(uploads, par.EndEpoch())
	}
	wg.Wait()
	uploads = append(uploads, par.EndEpoch()) // the remainder

	union := rskt.New(params)
	for _, up := range uploads {
		if err := union.MergeMax(up); err != nil {
			t.Fatal(err)
		}
	}
	want := rskt.New(params)
	for i := 0; i < packets; i++ {
		want.Record(uint64(i%flows), uint64(i))
	}
	if !union.Equal(want) {
		t.Fatal("union of epoch uploads differs from the full packet multiset")
	}
}

// TestRecorderConcurrentChaos drives recorders, legacy shard recording,
// queries, epoch rolls, snapshots and recorder Close at once; exists to
// fail under -race if the pipeline ever loses its locking.
func TestRecorderConcurrentChaos(t *testing.T) {
	pt, err := NewSpreadPoint(0, rskt.Params{W: 64, M: 32, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rec := pt.NewRecorder()
			for i := 0; i < 5000; i++ {
				rec.Record(uint64(i%50), uint64(i))
			}
			rec.Close()
		}(w)
	}
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			_ = pt.Query(uint64(i % 50))
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			_ = pt.EndEpoch()
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			_, _, _, _ = pt.Snapshot()
		}
	}()
	wg.Wait()
}

// TestRecorderVisibilityAfterFlush pins the pipeline's visibility
// contract: packets are invisible until a batch boundary or Flush, and
// visible to queries immediately after.
func TestRecorderVisibilityAfterFlush(t *testing.T) {
	pt, err := NewSizePointShards(0, countmin.Params{D: 2, W: 128, Seed: 3}, SizeModeCumulative, 1)
	if err != nil {
		t.Fatal(err)
	}
	rec := pt.Point.NewRecorder()
	rec.Record(42, 0)
	if got := pt.Query(42); got != 0 {
		t.Fatalf("buffered packet visible before flush: %d", got)
	}
	rec.Flush()
	if got := pt.Query(42); got != 1 {
		t.Fatalf("flushed packet not visible: %d", got)
	}
	// A full batch self-applies without an explicit Flush.
	for i := 0; i < recorderBatch; i++ {
		rec.Record(43, 0)
	}
	if got := pt.Query(43); got != recorderBatch {
		t.Fatalf("full batch not self-applied: %d", got)
	}
}

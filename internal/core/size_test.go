package core

import (
	"errors"
	"testing"

	"repro/internal/countmin"
	"repro/internal/xhash"
)

// genEpochSizePackets generates per-epoch, per-point flow streams with
// skewed sizes.
func genEpochSizePackets(points, epochs, flows int, seed uint64) [][][]uint64 {
	out := make([][][]uint64, epochs)
	ctr := seed
	for k := 0; k < epochs; k++ {
		out[k] = make([][]uint64, points)
		for x := 0; x < points; x++ {
			var ps []uint64
			for f := 0; f < flows; f++ {
				// Flow f sends ~f%13+1 packets per epoch per point, jittered.
				ctr++
				cnt := int(xhash.Hash64(ctr, seed)%7) + f%13 + 1
				for i := 0; i < cnt; i++ {
					ps = append(ps, uint64(f))
				}
			}
			out[k][x] = ps
		}
	}
	return out
}

type sizeCluster struct {
	n       int
	points  []*SizePoint
	center  *SizeCenter
	enhance bool
}

func newSizeCluster(t *testing.T, n int, widths []int, d int, seed uint64, mode SizeMode, enhance bool) *sizeCluster {
	t.Helper()
	params := make(map[int]countmin.Params, len(widths))
	pts := make([]*SizePoint, len(widths))
	for x, w := range widths {
		p := countmin.Params{D: d, W: w, Seed: seed}
		params[x] = p
		sp, err := NewSizePoint(x, p, mode)
		if err != nil {
			t.Fatal(err)
		}
		pts[x] = sp
	}
	center, err := NewSizeCenter(n, params, mode)
	if err != nil {
		t.Fatal(err)
	}
	return &sizeCluster{n: n, points: pts, center: center, enhance: enhance}
}

func (c *sizeCluster) runEpoch(t *testing.T, k int64, packets [][]uint64) {
	t.Helper()
	for x, ps := range packets {
		for _, f := range ps {
			c.points[x].Record(f)
		}
	}
	for x, pt := range c.points {
		upload := pt.EndEpoch()
		if err := c.center.Receive(x, k, upload); err != nil {
			t.Fatal(err)
		}
	}
	for x, pt := range c.points {
		agg, err := c.center.AggregateFor(x, k+1)
		if err != nil {
			t.Fatal(err)
		}
		if err := pt.ApplyAggregate(agg); err != nil {
			t.Fatal(err)
		}
		if c.enhance {
			enh, err := c.center.EnhancementFor(x, k+1)
			if err != nil {
				t.Fatal(err)
			}
			if err := pt.ApplyEnhancement(enh); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func idealSize(p countmin.Params, packets [][][]uint64, include func(k, x int) bool) *countmin.Sketch {
	s := countmin.New(p)
	for k := range packets {
		for x := range packets[k] {
			if !include(k, x) {
				continue
			}
			for _, f := range packets[k][x] {
				s.Record(f, 0)
			}
		}
	}
	return s
}

func TestSizeProtocolMatchesIdealUniform(t *testing.T) {
	// Theorem 6.3: without device diversity the two-sketch design's C
	// equals the ideal single CountMin over the approximate networkwide
	// T-stream, counter-for-counter.
	const (
		n, p, w, d = 5, 3, 128, 4
		epochs     = 9
	)
	packets := genEpochSizePackets(p, epochs, 50, 17)
	c := newSizeCluster(t, n, []int{w, w, w}, d, 23, SizeModeCumulative, false)
	for k := 1; k <= epochs; k++ {
		c.runEpoch(t, int64(k), packets[k-1])
		kNext := k + 1
		if kNext <= n {
			continue
		}
		for x := range c.points {
			x := x
			want := idealSize(c.points[x].Params(), packets, func(ek, ex int) bool {
				epoch := ek + 1
				if epoch >= kNext-n+1 && epoch <= kNext-2 {
					return true
				}
				return epoch == kNext-1 && ex == x
			})
			for f := uint64(0); f < 50; f++ {
				if got, wantEst := c.points[x].Query(f), want.Estimate(f); got != wantEst {
					t.Fatalf("epoch %d point %d flow %d: protocol %d != ideal %d",
						kNext, x, f, got, wantEst)
				}
			}
		}
	}
}

func TestSizeRecoveryMatchesDeltaMode(t *testing.T) {
	// The center's subtraction-based recovery must reproduce exactly the
	// per-epoch sketches a delta-uploading point would send.
	const (
		n, p, w, d = 5, 3, 64, 4
		epochs     = 8
	)
	packets := genEpochSizePackets(p, epochs, 40, 31)
	cum := newSizeCluster(t, n, []int{w, w, w}, d, 7, SizeModeCumulative, false)
	del := newSizeCluster(t, n, []int{w, w, w}, d, 7, SizeModeDelta, false)
	for k := 1; k <= epochs; k++ {
		cum.runEpoch(t, int64(k), packets[k-1])
		del.runEpoch(t, int64(k), packets[k-1])
		for x := 0; x < p; x++ {
			a := cum.center.Delta(x, int64(k))
			b := del.center.Delta(x, int64(k))
			if a == nil || b == nil {
				t.Fatalf("missing delta for point %d epoch %d", x, k)
			}
			if !a.Equal(b) {
				t.Fatalf("recovered delta differs from true delta: point %d epoch %d", x, k)
			}
		}
	}
}

func TestSizeRecoveryWithEnhancement(t *testing.T) {
	// The enhancement contaminates the cumulative upload; the center must
	// compensate so recovery stays exact.
	const (
		n, p, w, d = 5, 3, 64, 4
		epochs     = 8
	)
	packets := genEpochSizePackets(p, epochs, 30, 41)
	cum := newSizeCluster(t, n, []int{w, w, w}, d, 3, SizeModeCumulative, true)
	del := newSizeCluster(t, n, []int{w, w, w}, d, 3, SizeModeDelta, true)
	for k := 1; k <= epochs; k++ {
		cum.runEpoch(t, int64(k), packets[k-1])
		del.runEpoch(t, int64(k), packets[k-1])
		for x := 0; x < p; x++ {
			a, b := cum.center.Delta(x, int64(k)), del.center.Delta(x, int64(k))
			if a == nil || !a.Equal(b) {
				t.Fatalf("enhanced recovery broken at point %d epoch %d", x, k)
			}
		}
	}
}

func TestSizeEnhancementCoversLastEpoch(t *testing.T) {
	// With enhancement, C covers all points' epochs kNext-n+1 .. kNext-1.
	const (
		n, p, w, d = 5, 3, 128, 4
		epochs     = 9
	)
	packets := genEpochSizePackets(p, epochs, 40, 19)
	c := newSizeCluster(t, n, []int{w, w, w}, d, 29, SizeModeCumulative, true)
	for k := 1; k <= epochs; k++ {
		c.runEpoch(t, int64(k), packets[k-1])
	}
	kNext := epochs + 1
	for x := range c.points {
		want := idealSize(c.points[x].Params(), packets, func(ek, ex int) bool {
			epoch := ek + 1
			return epoch >= kNext-n+1 && epoch <= kNext-1
		})
		for f := uint64(0); f < 40; f++ {
			if got, wantEst := c.points[x].Query(f), want.Estimate(f); got != wantEst {
				t.Fatalf("point %d flow %d: enhanced %d != ideal %d", x, f, got, wantEst)
			}
		}
	}
}

func TestSizeDiversityBounds(t *testing.T) {
	// Theorem 6.4: with diversity, the estimate at any point is bounded by
	// the ideal estimates at the largest and smallest widths:
	// s'_{p-1} <= s_{f,x} <= s'_0.
	const (
		n, p, d = 5, 3, 4
		epochs  = 9
	)
	widths := []int{32, 64, 128}
	packets := genEpochSizePackets(p, epochs, 60, 53)
	c := newSizeCluster(t, n, widths, d, 11, SizeModeCumulative, false)
	for k := 1; k <= epochs; k++ {
		c.runEpoch(t, int64(k), packets[k-1])
	}
	kNext := epochs + 1
	for x := range c.points {
		x := x
		include := func(ek, ex int) bool {
			epoch := ek + 1
			if epoch >= kNext-n+1 && epoch <= kNext-2 {
				return true
			}
			return epoch == kNext-1 && ex == x
		}
		seed := c.points[x].Params().Seed
		lo := idealSize(countmin.Params{D: d, W: widths[len(widths)-1], Seed: seed}, packets, include)
		hi := idealSize(countmin.Params{D: d, W: widths[0], Seed: seed}, packets, include)
		for f := uint64(0); f < 60; f++ {
			got := c.points[x].Query(f)
			if got < lo.Estimate(f) || got > hi.Estimate(f) {
				t.Fatalf("point %d flow %d: estimate %d outside [%d, %d]",
					x, f, got, lo.Estimate(f), hi.Estimate(f))
			}
		}
	}
}

func TestSizeEstimateNeverBelowTruth(t *testing.T) {
	// CountMin's one-sided error survives the whole protocol: the answer
	// can never undershoot the true approximate-T-stream size.
	const (
		n, p, d = 5, 3, 4
		epochs  = 9
	)
	packets := genEpochSizePackets(p, epochs, 50, 61)
	c := newSizeCluster(t, n, []int{64, 64, 64}, d, 31, SizeModeCumulative, false)
	for k := 1; k <= epochs; k++ {
		c.runEpoch(t, int64(k), packets[k-1])
	}
	kNext := epochs + 1
	truth := make(map[uint64]int64)
	for ek := range packets {
		epoch := ek + 1
		for ex := range packets[ek] {
			if epoch >= kNext-n+1 && epoch <= kNext-2 || (epoch == kNext-1 && ex == 0) {
				for _, f := range packets[ek][ex] {
					truth[f]++
				}
			}
		}
	}
	for f, want := range truth {
		if got := c.points[0].Query(f); got < want {
			t.Fatalf("flow %d: estimate %d below truth %d", f, got, want)
		}
	}
}

func TestSizeCenterSequencing(t *testing.T) {
	params := countmin.Params{D: 4, W: 16, Seed: 1}
	center, err := NewSizeCenter(5, map[int]countmin.Params{0: params}, SizeModeCumulative)
	if err != nil {
		t.Fatal(err)
	}
	if err := center.Receive(0, 1, countmin.New(params)); err != nil {
		t.Fatal(err)
	}
	if err := center.Receive(0, 1, countmin.New(params)); !errors.Is(err, ErrDuplicateUpload) {
		t.Fatalf("duplicate upload: got %v, want ErrDuplicateUpload", err)
	}
	// A cumulative-mode epoch gap breaks the recovery chain: the post-gap
	// upload is dropped pending a rebase, and so is the next in-order one.
	if err := center.Receive(0, 3, countmin.New(params)); !errors.Is(err, ErrUploadGap) {
		t.Fatalf("gap upload: got %v, want ErrUploadGap", err)
	}
	if err := center.Receive(0, 4, countmin.New(params)); !errors.Is(err, ErrUploadGap) {
		t.Fatalf("post-gap upload: got %v, want ErrUploadGap", err)
	}
	// A rebase upload reseeds the chain; in-order uploads recover again.
	if err := center.ReceiveMeta(0, 5, countmin.New(params), UploadMeta{Epoch: 5, Rebase: true}); err != nil {
		t.Fatal(err)
	}
	if err := center.Receive(0, 6, countmin.New(params)); err != nil {
		t.Fatal(err)
	}
	if err := center.Receive(5, 1, countmin.New(params)); err == nil {
		t.Fatal("expected unknown-point error")
	}
	wrong := countmin.New(countmin.Params{D: 4, W: 32, Seed: 1})
	if err := center.Receive(0, 2, wrong); err == nil {
		t.Fatal("expected parameter-mismatch error")
	}
}

func TestSizeCenterValidation(t *testing.T) {
	good := countmin.Params{D: 4, W: 16, Seed: 1}
	if _, err := NewSizeCenter(2, map[int]countmin.Params{0: good}, SizeModeCumulative); err == nil {
		t.Fatal("expected n<3 error")
	}
	if _, err := NewSizeCenter(5, nil, SizeModeCumulative); err == nil {
		t.Fatal("expected empty-cluster error")
	}
	if _, err := NewSizeCenter(5, map[int]countmin.Params{0: good}, SizeMode(0)); err == nil {
		t.Fatal("expected bad-mode error")
	}
	bad := map[int]countmin.Params{0: good, 1: {D: 5, W: 16, Seed: 1}}
	if _, err := NewSizeCenter(5, bad, SizeModeCumulative); err == nil {
		t.Fatal("expected mismatched D error")
	}
}

func TestSizePointValidation(t *testing.T) {
	if _, err := NewSizePoint(0, countmin.Params{D: 0, W: 4}, SizeModeCumulative); err == nil {
		t.Fatal("expected invalid-params error")
	}
	if _, err := NewSizePoint(0, countmin.Params{D: 4, W: 4}, SizeMode(9)); err == nil {
		t.Fatal("expected invalid-mode error")
	}
	pt, err := NewSizePoint(0, countmin.Params{D: 4, W: 4}, SizeModeCumulative)
	if err != nil {
		t.Fatal(err)
	}
	if err := pt.ApplyAggregate(nil); err != nil {
		t.Fatal("nil aggregate must be a no-op")
	}
	if pt.Mode() != SizeModeCumulative || pt.ID() != 0 {
		t.Fatal("accessor mismatch")
	}
}

func TestSizeAggregateIdempotent(t *testing.T) {
	// AggregateFor must return the identical recorded sketch when called
	// twice for the same (point, epoch) — recovery depends on it.
	const n, w, d = 5, 32, 4
	packets := genEpochSizePackets(2, 7, 20, 71)
	c := newSizeCluster(t, n, []int{w, w}, d, 37, SizeModeCumulative, false)
	for k := 1; k <= 6; k++ {
		c.runEpoch(t, int64(k), packets[k-1])
	}
	a, err := c.center.AggregateFor(0, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.center.AggregateFor(0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a == nil || !a.Equal(b) {
		t.Fatal("AggregateFor not idempotent")
	}
}

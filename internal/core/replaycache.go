// The replay cache is the read-side complement of the epoch log: where
// the log makes retrospective T-queries possible, the cache makes them
// cheap. It holds two tiers of materialized work, both keyed by the
// center's topology generation so a weight change can never mix shapes:
//
//   - per-epoch partials: the spatial join of every retained cell of one
//     epoch, expanded to the maximum width. Because ExpandTo is
//     positional replication and every backend's Merge is element-wise
//     (register max, counter add), expand-then-merge commutes with
//     merge-then-expand and merge order never changes a register bit —
//     so a window answer assembled from cached partials is bit-identical
//     to the from-scratch replay. A warm QueryAt is pure in-memory
//     merges; a sliding QueryRange pays one cold epoch per step.
//   - window memos: the final (estimate, coverage) of a whole (flow,
//     window) query, making an exactly-repeated query O(1).
//
// Invalidation is by epoch span: compaction eviction (via
// durable.LogConfig.OnEvict) and late appends both drop every partial
// and memo touching the span, so the cache can never serve an epoch the
// store no longer holds, nor a stale partial missing a backfilled cell.
// Per-epoch version counters close the insert race: a query snapshots an
// epoch's version before reading cells, and the insert is discarded if
// the version moved. The partial tier is bounded by a byte budget with
// LRU eviction; the memo tier by an entry cap.

package core

import (
	"container/list"
	"sync"
)

// replayMemoCap bounds the window-memo tier; partials dominate the byte
// budget, memos are 3 words each.
const replayMemoCap = 1024

// ReplayCacheStats is a point-in-time snapshot for health endpoints.
type ReplayCacheStats struct {
	// Hits/Misses count per-epoch partial lookups; WindowHits counts
	// whole-answer memo hits (a memo hit skips the partial tier
	// entirely).
	Hits       uint64
	Misses     uint64
	WindowHits uint64
	// Evictions counts partials dropped by the byte budget;
	// Invalidations counts invalidation calls (compaction or append).
	Evictions     uint64
	Invalidations uint64
	Bytes         int64
	Entries       int
	Budget        int64
}

type partialKey struct {
	epoch int64
	gen   uint64
}

type partialEntry[S Sketch[S]] struct {
	key partialKey
	// sk is the epoch's spatial join at wMax; have is false for a
	// negative entry (epoch retained no cells when computed).
	sk     S
	have   bool
	merged int // Σ point weights present in the epoch (coverage share)
	bytes  int64
	elem   *list.Element
}

type windowKey struct {
	flow        uint64
	first, last int64
	gen         uint64
}

type windowAnswer struct {
	est float64
	cov Coverage
}

// ReplayCache caches historical-replay work for one Center. All methods
// are safe for concurrent use. Cached sketches are shared read-only:
// lookupPartial returns the cached object itself and callers must only
// Clone or Merge-from it.
type ReplayCache[S Sketch[S]] struct {
	mu      sync.Mutex
	budget  int64
	bytes   int64
	entries map[partialKey]*partialEntry[S]
	lru     *list.List // front = most recently used
	memo    map[windowKey]windowAnswer

	// Epoch versions: ver(e) = verBase + verEpoch[e]. Invalidating a
	// narrow span bumps per-epoch counters; a huge span (or an oversized
	// map) bumps verBase and clears the map, which conservatively ages
	// every epoch at once.
	verBase  uint64
	verEpoch map[int64]uint64

	hits, misses, windowHits uint64
	evictions, invalidations uint64
}

// NewReplayCache creates a cache bounded to budgetBytes of decoded
// partials (plus the fixed-cap memo tier).
func NewReplayCache[S Sketch[S]](budgetBytes int64) *ReplayCache[S] {
	return &ReplayCache[S]{
		budget:   budgetBytes,
		entries:  make(map[partialKey]*partialEntry[S]),
		lru:      list.New(),
		memo:     make(map[windowKey]windowAnswer),
		verEpoch: make(map[int64]uint64),
	}
}

func (rc *ReplayCache[S]) verLocked(e int64) uint64 { return rc.verBase + rc.verEpoch[e] }

// version returns epoch e's current invalidation version; a query
// snapshots it before computing a partial so insertPartial can detect a
// racing invalidation.
func (rc *ReplayCache[S]) version(e int64) uint64 {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.verLocked(e)
}

// versionSum sums versions over [first, last]. Versions only grow, so an
// unchanged sum proves no epoch in the span was invalidated in between.
func (rc *ReplayCache[S]) versionSum(first, last int64) uint64 {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	var s uint64
	for e := first; e <= last; e++ {
		s += rc.verLocked(e)
	}
	return s
}

// lookupPartial returns the cached partial for (epoch, gen). ok reports
// a cache hit; have distinguishes a real partial from a cached
// "epoch holds no cells". The returned sketch is shared — read-only.
func (rc *ReplayCache[S]) lookupPartial(epoch int64, gen uint64) (sk S, merged int, have, ok bool) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	ent, found := rc.entries[partialKey{epoch, gen}]
	if !found {
		rc.misses++
		return sk, 0, false, false
	}
	rc.hits++
	rc.lru.MoveToFront(ent.elem)
	return ent.sk, ent.merged, ent.have, true
}

// insertPartial publishes a freshly computed partial, unless epoch's
// version moved past ver since the caller snapshotted it (a concurrent
// append or eviction made the computation stale). Once inserted the
// sketch is shared and must no longer be written by the caller.
func (rc *ReplayCache[S]) insertPartial(epoch int64, gen, ver uint64, sk S, have bool, merged int, bytes int64) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.verLocked(epoch) != ver {
		return
	}
	key := partialKey{epoch, gen}
	if old, ok := rc.entries[key]; ok {
		// Another query raced us here; keep theirs.
		_ = old
		return
	}
	ent := &partialEntry[S]{key: key, sk: sk, have: have, merged: merged, bytes: bytes}
	ent.elem = rc.lru.PushFront(ent)
	rc.entries[key] = ent
	rc.bytes += bytes
	for rc.bytes > rc.budget && rc.lru.Len() > 0 {
		back := rc.lru.Back()
		rc.removeLocked(back.Value.(*partialEntry[S]))
		rc.evictions++
	}
}

func (rc *ReplayCache[S]) removeLocked(ent *partialEntry[S]) {
	rc.lru.Remove(ent.elem)
	delete(rc.entries, ent.key)
	rc.bytes -= ent.bytes
}

// lookupWindow returns a memoized whole-window answer.
func (rc *ReplayCache[S]) lookupWindow(flow uint64, first, last int64, gen uint64) (windowAnswer, bool) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	ans, ok := rc.memo[windowKey{flow, first, last, gen}]
	if ok {
		rc.windowHits++
	}
	return ans, ok
}

// insertWindow memoizes a window answer, unless versionSum(first, last)
// moved past verSum since the query started.
func (rc *ReplayCache[S]) insertWindow(k windowKey, ans windowAnswer, verSum uint64) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	var s uint64
	for e := k.first; e <= k.last; e++ {
		s += rc.verLocked(e)
	}
	if s != verSum {
		return
	}
	if len(rc.memo) >= replayMemoCap {
		for old := range rc.memo { // drop an arbitrary entry
			delete(rc.memo, old)
			break
		}
	}
	rc.memo[k] = ans
}

// InvalidateEpochs drops every partial and window memo touching the
// inclusive epoch span [min, max] and ages the span's versions, so
// in-flight computations over it are discarded instead of published.
// Compaction eviction and (late) appends both route here.
func (rc *ReplayCache[S]) InvalidateEpochs(min, max int64) {
	if max < min {
		return
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	rc.invalidations++
	if span := max - min + 1; span > 4096 || len(rc.verEpoch) > 65536 {
		rc.verBase++
		clear(rc.verEpoch)
	} else {
		for e := min; e <= max; e++ {
			rc.verEpoch[e]++
		}
	}
	for key, ent := range rc.entries {
		if key.epoch >= min && key.epoch <= max {
			rc.removeLocked(ent)
		}
	}
	for k := range rc.memo {
		if k.first <= max && min <= k.last {
			delete(rc.memo, k)
		}
	}
}

// Reset drops everything (partials, memos, versions) and keeps the
// budget. Benchmarks use it to measure the cold path.
func (rc *ReplayCache[S]) Reset() {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	clear(rc.entries)
	rc.lru.Init()
	clear(rc.memo)
	rc.verBase++
	clear(rc.verEpoch)
	rc.bytes = 0
}

// Stats snapshots the cache counters.
func (rc *ReplayCache[S]) Stats() ReplayCacheStats {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return ReplayCacheStats{
		Hits:          rc.hits,
		Misses:        rc.misses,
		WindowHits:    rc.windowHits,
		Evictions:     rc.evictions,
		Invalidations: rc.invalidations,
		Bytes:         rc.bytes,
		Entries:       len(rc.entries),
		Budget:        rc.budget,
	}
}

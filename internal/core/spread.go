package core

import (
	"fmt"
	"reflect"
	"sync"

	"repro/internal/rskt"
)

// SpreadSketch is the contract the three-sketch design needs from its
// per-flow spread sketch. rSkt2 (with any of its estimators) satisfies it,
// and so does any union-mergeable sketch whose columns can be expanded and
// compressed with power-of-two width ratios (e.g. internal/vhll). The
// paper builds on rSkt2(HLL) and notes the design "can be easily modified
// to work with other sketches" (Section IV-B); this interface is that
// modification point.
type SpreadSketch[S any] interface {
	// Record inserts packet <f, e>.
	Record(f, e uint64)
	// Estimate answers a flow-spread query.
	Estimate(f uint64) float64
	// MergeMax folds another sketch in with union semantics.
	MergeMax(S) error
	// CopyFrom overwrites this sketch's state with another's.
	CopyFrom(S) error
	// Reset zeroes the sketch.
	Reset()
	// Clone returns a deep copy.
	Clone() S
	// ExpandTo/CompressTo implement the expand-and-compress nonuniform
	// join (Sections IV-C); widths must have integral ratios.
	ExpandTo(w int) (S, error)
	CompressTo(w int) (S, error)
	// Width is the sketch's column count (the paper's w).
	Width() int
	// Compatible reports whether two sketches may be joined after width
	// alignment (same estimator shape and hash seed).
	Compatible(S) bool
}

// SpreadPoint is one measurement point running the three-sketch design
// for flow spread, generic over the epoch sketch. It is safe for
// concurrent use: the live transport records packets while aggregates
// arrive from the center.
type SpreadPoint[S SpreadSketch[S]] struct {
	mu sync.Mutex

	id    int
	fresh func() S
	epoch int64 // current epoch k (1-based)

	b  S // current-epoch measurement, uploaded at epoch end
	c  S // query target (holds the approximate T-stream)
	cp S // C': staging for the next epoch
}

// NewSpreadPointOf creates a measurement point whose sketches are built by
// fresh (called three times up front and once per epoch for the new B).
func NewSpreadPointOf[S SpreadSketch[S]](id int, fresh func() S) (*SpreadPoint[S], error) {
	if fresh == nil {
		return nil, fmt.Errorf("core: nil sketch constructor for point %d", id)
	}
	return &SpreadPoint[S]{
		id:    id,
		fresh: fresh,
		epoch: 1,
		b:     fresh(),
		c:     fresh(),
		cp:    fresh(),
	}, nil
}

// NewSpreadPoint creates the paper's rSkt2(HLL)-backed measurement point.
// Points of one cluster must share M and Seed; W may differ (device
// diversity).
func NewSpreadPoint(id int, p rskt.Params) (*SpreadPoint[*rskt.Sketch], error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return NewSpreadPointOf(id, func() *rskt.Sketch { return rskt.New(p) })
}

// ID returns the point's identifier.
func (p *SpreadPoint[S]) ID() int { return p.id }

// Params returns the point's sketch parameters (rSkt2-backed points only;
// generic callers use Sketch().Width()/Compatible()).
func (p *SpreadPoint[S]) Params() rskt.Params {
	if sk, ok := any(p.c).(*rskt.Sketch); ok {
		return sk.Params()
	}
	return rskt.Params{}
}

// Epoch returns the current (1-based) epoch index.
func (p *SpreadPoint[S]) Epoch() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.epoch
}

// Record inserts packet <f, e> into all three sketches (stage 1, local
// online recording).
func (p *SpreadPoint[S]) Record(f, e uint64) {
	p.mu.Lock()
	p.b.Record(f, e)
	p.c.Record(f, e)
	p.cp.Record(f, e)
	p.mu.Unlock()
}

// Query answers the approximate real-time networkwide T-query for flow f
// from the local C sketch only. Slightly negative estimates (subtraction
// noise) are possible; callers needing counts should clamp at zero.
func (p *SpreadPoint[S]) Query(f uint64) float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.c.Estimate(f)
}

// EndEpoch performs the epoch-boundary actions (stage 2, local periodical
// measurement update): it returns the B sketch of the epoch that just
// ended (for upload to the center), copies C' into C, and resets both B
// and C' for the new epoch. The returned sketch is owned by the caller.
func (p *SpreadPoint[S]) EndEpoch() S {
	p.mu.Lock()
	defer p.mu.Unlock()
	upload := p.b
	p.b = p.fresh()
	// "Copy C' to C, reset C'" implemented as swap-then-reset to avoid
	// the copy: C takes C''s content, the old C becomes the zeroed C'.
	p.c, p.cp = p.cp, p.c
	p.cp.Reset()
	p.epoch++
	return upload
}

// ApplyAggregate merges the center's ST-join result (the networkwide union
// of the window's completed epochs, customized to this point's width) into
// C' (Task 3). A zero-valued aggregate pointer is a no-op.
func (p *SpreadPoint[S]) ApplyAggregate(agg S) error {
	if isNilSketch(agg) {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.cp.MergeMax(agg); err != nil {
		return fmt.Errorf("spread point %d: apply aggregate: %w", p.id, err)
	}
	return nil
}

// ApplyEnhancement merges the peers' last-completed-epoch union directly
// into C (the Section IV-D enhancement), tightening the current epoch's
// answers toward the exact networkwide T-query.
func (p *SpreadPoint[S]) ApplyEnhancement(enh S) error {
	if isNilSketch(enh) {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.c.MergeMax(enh); err != nil {
		return fmt.Errorf("spread point %d: apply enhancement: %w", p.id, err)
	}
	return nil
}

// ApplyAggregateAt is ApplyAggregate guarded by an epoch check performed
// under the point's lock: the merge happens only if the point is still in
// epoch k. Returns ErrStaleEpoch otherwise (the push missed the round-trip
// bound and must be dropped, not merged into the wrong window).
func (p *SpreadPoint[S]) ApplyAggregateAt(k int64, agg S) error {
	if isNilSketch(agg) {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.epoch != k {
		return ErrStaleEpoch
	}
	if err := p.cp.MergeMax(agg); err != nil {
		return fmt.Errorf("spread point %d: apply aggregate: %w", p.id, err)
	}
	return nil
}

// ApplyEnhancementAt is ApplyEnhancement guarded by an epoch check under
// the point's lock.
func (p *SpreadPoint[S]) ApplyEnhancementAt(k int64, enh S) error {
	if isNilSketch(enh) {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.epoch != k {
		return ErrStaleEpoch
	}
	if err := p.c.MergeMax(enh); err != nil {
		return fmt.Errorf("spread point %d: apply enhancement: %w", p.id, err)
	}
	return nil
}

// isNilSketch reports whether a sketch value is absent: sketch
// implementations are pointer types, and a nil pointer is the "no
// aggregate yet" signal during cluster start-up. Not on the hot path (at
// most a few calls per epoch).
func isNilSketch(s any) bool {
	if s == nil {
		return true
	}
	v := reflect.ValueOf(s)
	return v.Kind() == reflect.Pointer && v.IsNil()
}

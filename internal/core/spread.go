package core

import (
	"repro/internal/rskt"
)

// SpreadSketch is the contract the three-sketch design needs from its
// per-flow spread sketch: the generic sketch algebra plus the
// spread-flavored estimator surface. rSkt2 (with any of its estimators)
// satisfies it, and so does any union-mergeable sketch whose columns can
// be expanded and compressed with power-of-two width ratios (e.g.
// internal/vhll). The paper builds on rSkt2(HLL) and notes the design "can
// be easily modified to work with other sketches" (Section IV-B); this
// interface is that modification point.
type SpreadSketch[S any] interface {
	Sketch[S]
	// Estimate answers a flow-spread query.
	Estimate(f uint64) float64
	// MergeMax folds another sketch in with union semantics — the sketch
	// algebra's Merge under its spread-design name.
	MergeMax(S) error
}

// SpreadPoint is one measurement point running the three-sketch design for
// flow spread, generic over the epoch sketch: the generic epoch engine
// instantiated with delta uploads and the non-additive (register-max)
// merge discipline. Safe for concurrent use (see Point).
type SpreadPoint[S SpreadSketch[S]] struct {
	*Point[S]
}

// NewSpreadPointOf creates a measurement point whose sketches are built by
// fresh (called three times plus once per ingest shard up front, and once
// per epoch for the new B), with the GOMAXPROCS-bounded default shard
// count.
func NewSpreadPointOf[S SpreadSketch[S]](id int, fresh func() S) (*SpreadPoint[S], error) {
	return NewSpreadPointShardsOf(id, fresh, 0)
}

// NewSpreadPointShardsOf is NewSpreadPointOf with an explicit ingest-shard
// count (0 = the GOMAXPROCS-bounded default, 1 = the serial layout).
func NewSpreadPointShardsOf[S SpreadSketch[S]](id int, fresh func() S, shards int) (*SpreadPoint[S], error) {
	pt, err := NewPoint[S](id, fresh, EngineConfig[S]{
		Design: "spread",
		Mode:   ModeDelta,
		Shards: shards,
	})
	if err != nil {
		return nil, err
	}
	return &SpreadPoint[S]{Point: pt}, nil
}

// NewSpreadPoint creates the paper's rSkt2(HLL)-backed measurement point.
// Points of one cluster must share M and Seed; W may differ (device
// diversity).
func NewSpreadPoint(id int, p rskt.Params) (*SpreadPoint[*rskt.Sketch], error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return NewSpreadPointOf(id, func() *rskt.Sketch { return rskt.New(p) })
}

// Params returns the point's sketch parameters (rSkt2-backed points only;
// generic callers use Sketch().Width()/Compatible()).
func (p *SpreadPoint[S]) Params() rskt.Params {
	if sk, ok := any(p.c).(*rskt.Sketch); ok {
		return sk.Params()
	}
	return rskt.Params{}
}

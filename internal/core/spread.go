package core

import (
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"

	"repro/internal/rskt"
)

// SpreadSketch is the contract the three-sketch design needs from its
// per-flow spread sketch. rSkt2 (with any of its estimators) satisfies it,
// and so does any union-mergeable sketch whose columns can be expanded and
// compressed with power-of-two width ratios (e.g. internal/vhll). The
// paper builds on rSkt2(HLL) and notes the design "can be easily modified
// to work with other sketches" (Section IV-B); this interface is that
// modification point.
type SpreadSketch[S any] interface {
	// Record inserts packet <f, e>.
	Record(f, e uint64)
	// Estimate answers a flow-spread query.
	Estimate(f uint64) float64
	// EstimateUnion answers Estimate(f) over the union of the sketch and
	// others (as if every other sketch had been MergeMax-ed in first)
	// without mutating anything. others share the sketch's shape; an empty
	// slice must be equivalent to Estimate. The sharded ingest path uses
	// it to fold not-yet-merged shard deltas into query answers.
	EstimateUnion(f uint64, others []S) float64
	// MergeMax folds another sketch in with union semantics.
	MergeMax(S) error
	// CopyFrom overwrites this sketch's state with another's.
	CopyFrom(S) error
	// Reset zeroes the sketch.
	Reset()
	// Clone returns a deep copy.
	Clone() S
	// ExpandTo/CompressTo implement the expand-and-compress nonuniform
	// join (Sections IV-C); widths must have integral ratios.
	ExpandTo(w int) (S, error)
	CompressTo(w int) (S, error)
	// Width is the sketch's column count (the paper's w).
	Width() int
	// Compatible reports whether two sketches may be joined after width
	// alignment (same estimator shape and hash seed).
	Compatible(S) bool
}

// spreadShard is one ingest shard of a spread point: a delta sketch
// receiving a slice of the record stream, folded into B/C/C' with
// register-wise max at the fold points (see shard.go).
type spreadShard[S SpreadSketch[S]] struct {
	mu    sync.Mutex
	dirty atomic.Bool
	d     S
}

// SpreadPoint is one measurement point running the three-sketch design
// for flow spread, generic over the epoch sketch. It is safe for
// concurrent use: the record path is lock-striped across shards, so the
// live transport's recorders do not serialize behind the point mutex
// while aggregates arrive from the center.
type SpreadPoint[S SpreadSketch[S]] struct {
	mu sync.Mutex // guards epoch and the authoritative sketch set

	id    int
	fresh func() S
	epoch int64 // current epoch k (1-based)

	b  S // current-epoch measurement, uploaded at epoch end
	c  S // query target (holds the approximate T-stream)
	cp S // C': staging for the next epoch

	// Degradation accounting (see coverage.go). topoPoints/topoN describe
	// the cluster (0 = standalone, coverage always reports full);
	// aggApplied/enhApplied guard against duplicate center pushes within
	// one epoch; covMerged is the point-epoch count of the aggregate
	// staged in C' (-1 = applied without coverage info, assume full);
	// covCur is the coverage of the current query target C.
	topoPoints, topoN int
	aggApplied        bool
	enhApplied        bool
	// backfilled guards against duplicate backfill pushes (a center-sent
	// aggregate merged directly into C after a restart; see
	// ApplyBackfillCovAt). Reset at every epoch boundary.
	backfilled bool
	covMerged  int
	covCur     Coverage

	shards []*spreadShard[S]
	rr     atomic.Uint64 // round-robin cursor for batch shard selection
}

// NewSpreadPointOf creates a measurement point whose sketches are built by
// fresh (called three times plus once per ingest shard up front, and once
// per epoch for the new B), with the GOMAXPROCS-bounded default shard
// count.
func NewSpreadPointOf[S SpreadSketch[S]](id int, fresh func() S) (*SpreadPoint[S], error) {
	return NewSpreadPointShardsOf(id, fresh, 0)
}

// NewSpreadPointShardsOf is NewSpreadPointOf with an explicit ingest-shard
// count (0 = the GOMAXPROCS-bounded default, 1 = the serial layout).
func NewSpreadPointShardsOf[S SpreadSketch[S]](id int, fresh func() S, shards int) (*SpreadPoint[S], error) {
	if fresh == nil {
		return nil, fmt.Errorf("core: nil sketch constructor for point %d", id)
	}
	p := &SpreadPoint[S]{
		id:     id,
		fresh:  fresh,
		epoch:  1,
		b:      fresh(),
		c:      fresh(),
		cp:     fresh(),
		shards: make([]*spreadShard[S], normShards(shards)),
	}
	for i := range p.shards {
		p.shards[i] = &spreadShard[S]{d: fresh()}
	}
	return p, nil
}

// NewSpreadPoint creates the paper's rSkt2(HLL)-backed measurement point.
// Points of one cluster must share M and Seed; W may differ (device
// diversity).
func NewSpreadPoint(id int, p rskt.Params) (*SpreadPoint[*rskt.Sketch], error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return NewSpreadPointOf(id, func() *rskt.Sketch { return rskt.New(p) })
}

// ID returns the point's identifier.
func (p *SpreadPoint[S]) ID() int { return p.id }

// Params returns the point's sketch parameters (rSkt2-backed points only;
// generic callers use Sketch().Width()/Compatible()).
func (p *SpreadPoint[S]) Params() rskt.Params {
	if sk, ok := any(p.c).(*rskt.Sketch); ok {
		return sk.Params()
	}
	return rskt.Params{}
}

// Epoch returns the current (1-based) epoch index.
func (p *SpreadPoint[S]) Epoch() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.epoch
}

// SetTopology tells the point how large its cluster is (point count and
// window n), which is what Coverage measures queries against. A standalone
// point (the default) expects nothing and always reports full coverage.
func (p *SpreadPoint[S]) SetTopology(points, windowN int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.topoPoints, p.topoN = points, windowN
}

// AdvanceTo fast-forwards the point's epoch clock without touching sketch
// state. A point that restarts without persisted state rejoins its cluster
// at the cluster's current epoch; everything before it is gone, so the
// current window's coverage is reset to empty.
func (p *SpreadPoint[S]) AdvanceTo(epoch int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if epoch <= p.epoch {
		return
	}
	p.epoch = epoch
	p.covCur = Coverage{EpochsExpected: expectedPointEpochs(p.topoPoints, p.topoN, epoch-1)}
	p.covMerged = 0
	p.aggApplied, p.enhApplied, p.backfilled = false, false, false
}

// Coverage returns the eq. (1)/(2) window coverage of the current query
// target (see Coverage).
func (p *SpreadPoint[S]) Coverage() Coverage {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.covCur
}

// Record inserts packet <f, e> (stage 1, local online recording). Only
// the flow's ingest shard is touched — one sketch update instead of
// three; the delta reaches B, C and C' at the next fold point.
func (p *SpreadPoint[S]) Record(f, e uint64) {
	sh := p.shards[shardOf(f, len(p.shards))]
	sh.mu.Lock()
	sh.d.Record(f, e)
	if !sh.dirty.Load() {
		sh.dirty.Store(true)
	}
	sh.mu.Unlock()
}

// RecordBatch inserts a batch of packets. The whole batch lands in a
// single shard under a single lock acquisition (round-robin with try-lock
// steering away from busy shards).
func (p *SpreadPoint[S]) RecordBatch(ps []SpreadPacket) {
	if len(ps) == 0 {
		return
	}
	n := len(p.shards)
	start := int(p.rr.Add(1)-1) % n
	var sh *spreadShard[S]
	for i := 0; i < n; i++ {
		if cand := p.shards[(start+i)%n]; cand.mu.TryLock() {
			sh = cand
			break
		}
	}
	if sh == nil {
		sh = p.shards[start]
		sh.mu.Lock()
	}
	for _, q := range ps {
		sh.d.Record(q.Flow, q.Elem)
	}
	if !sh.dirty.Load() {
		sh.dirty.Store(true)
	}
	sh.mu.Unlock()
}

// Query answers the approximate real-time networkwide T-query for flow f
// from the local C sketch plus the not-yet-folded shard deltas
// (register-wise max along f's virtual estimator, bit-identical to the
// serial single-sketch path). Slightly negative estimates (subtraction
// noise) are possible; callers needing counts should clamp at zero.
func (p *SpreadPoint[S]) Query(f uint64) float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	var (
		extras [maxShards]S
		locked [maxShards]*spreadShard[S]
		n      int
	)
	for _, sh := range p.shards {
		if sh.dirty.Load() {
			sh.mu.Lock()
			locked[n] = sh
			extras[n] = sh.d
			n++
		}
	}
	est := p.c.EstimateUnion(f, extras[:n])
	for i := 0; i < n; i++ {
		locked[i].mu.Unlock()
	}
	return est
}

// QueryWithCoverage answers Query(f) together with the coverage of the
// window the answer was computed from, read atomically so the pair is
// consistent across a concurrent epoch boundary.
func (p *SpreadPoint[S]) QueryWithCoverage(f uint64) (float64, Coverage) {
	p.mu.Lock()
	defer p.mu.Unlock()
	var (
		extras [maxShards]S
		locked [maxShards]*spreadShard[S]
		n      int
	)
	for _, sh := range p.shards {
		if sh.dirty.Load() {
			sh.mu.Lock()
			locked[n] = sh
			extras[n] = sh.d
			n++
		}
	}
	est := p.c.EstimateUnion(f, extras[:n])
	for i := 0; i < n; i++ {
		locked[i].mu.Unlock()
	}
	return est, p.covCur
}

// flushShardsLocked folds every dirty shard delta into B, C and C' with
// register-wise max and resets it. Caller holds p.mu.
func (p *SpreadPoint[S]) flushShardsLocked() {
	for _, sh := range p.shards {
		if !sh.dirty.Load() {
			continue
		}
		sh.mu.Lock()
		mustMergeMax(p.b, sh.d)
		mustMergeMax(p.c, sh.d)
		mustMergeMax(p.cp, sh.d)
		sh.d.Reset()
		sh.dirty.Store(false)
		sh.mu.Unlock()
	}
}

// mustMergeMax folds src into dst; shards share the point's sketch shape
// by construction, so a mismatch is a programmer error.
func mustMergeMax[S SpreadSketch[S]](dst, src S) {
	if err := dst.MergeMax(src); err != nil {
		panic("core: shard fold: " + err.Error())
	}
}

// EndEpoch performs the epoch-boundary actions (stage 2, local periodical
// measurement update): it folds the ingest shards, returns the B sketch of
// the epoch that just ended (for upload to the center), copies C' into C,
// and resets both B and C' for the new epoch. The returned sketch is owned
// by the caller. Recorders are never blocked by the boundary: they only
// touch shard deltas, which are folded one shard at a time.
func (p *SpreadPoint[S]) EndEpoch() S {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.flushShardsLocked()
	upload := p.b
	p.b = p.fresh()
	// "Copy C' to C, reset C'" implemented as swap-then-reset to avoid
	// the copy: C takes C''s content, the old C becomes the zeroed C'.
	p.c, p.cp = p.cp, p.c
	p.cp.Reset()
	p.rollCoverageLocked()
	p.epoch++
	return upload
}

// rollCoverageLocked moves the staged aggregate's coverage onto the query
// target (C' becomes C at this boundary) and opens a fresh slot for the
// next epoch's push. Caller holds p.mu with p.epoch still the epoch that
// is ending.
func (p *SpreadPoint[S]) rollCoverageLocked() {
	exp := expectedPointEpochs(p.topoPoints, p.topoN, p.epoch)
	m := p.covMerged
	if m < 0 || m > exp {
		// Aggregate applied through the coverage-oblivious path: trust it
		// to be whole.
		m = exp
	}
	p.covCur = Coverage{EpochsMerged: m, EpochsExpected: exp}
	p.covMerged = 0
	p.aggApplied, p.enhApplied, p.backfilled = false, false, false
}

// ApplyAggregate merges the center's ST-join result (the networkwide union
// of the window's completed epochs, customized to this point's width) into
// C' (Task 3). A zero-valued aggregate pointer is a no-op.
func (p *SpreadPoint[S]) ApplyAggregate(agg S) error {
	if isNilSketch(agg) {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.cp.MergeMax(agg); err != nil {
		return fmt.Errorf("spread point %d: apply aggregate: %w", p.id, err)
	}
	p.aggApplied = true
	p.covMerged = -1
	return nil
}

// ApplyEnhancement merges the peers' last-completed-epoch union directly
// into C (the Section IV-D enhancement), tightening the current epoch's
// answers toward the exact networkwide T-query.
func (p *SpreadPoint[S]) ApplyEnhancement(enh S) error {
	if isNilSketch(enh) {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.c.MergeMax(enh); err != nil {
		return fmt.Errorf("spread point %d: apply enhancement: %w", p.id, err)
	}
	p.enhApplied = true
	return nil
}

// ApplyAggregateAt is ApplyAggregate guarded by an epoch check performed
// under the point's lock: the merge happens only if the point is still in
// epoch k. Returns ErrStaleEpoch otherwise (the push missed the round-trip
// bound and must be dropped, not merged into the wrong window), and
// ErrDuplicatePush if this epoch's aggregate was already merged (a
// reconnect re-push).
func (p *SpreadPoint[S]) ApplyAggregateAt(k int64, agg S) error {
	return p.applyAggregateAt(k, agg, -1)
}

// ApplyAggregateCovAt is ApplyAggregateAt carrying the aggregate's
// coverage: how many point-epoch uploads the center actually joined into
// it. Queries answered from the window this aggregate lands in report that
// coverage (QueryWithCoverage).
func (p *SpreadPoint[S]) ApplyAggregateCovAt(k int64, agg S, merged int) error {
	return p.applyAggregateAt(k, agg, merged)
}

func (p *SpreadPoint[S]) applyAggregateAt(k int64, agg S, merged int) error {
	if isNilSketch(agg) {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.epoch != k {
		return ErrStaleEpoch
	}
	if p.aggApplied {
		return ErrDuplicatePush
	}
	if err := p.cp.MergeMax(agg); err != nil {
		return fmt.Errorf("spread point %d: apply aggregate: %w", p.id, err)
	}
	p.aggApplied = true
	p.covMerged = merged
	return nil
}

// ApplyEnhancementAt is ApplyEnhancement guarded by an epoch check under
// the point's lock, with the same duplicate-push guard as
// ApplyAggregateAt.
func (p *SpreadPoint[S]) ApplyEnhancementAt(k int64, enh S) error {
	if isNilSketch(enh) {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.epoch != k {
		return ErrStaleEpoch
	}
	if p.enhApplied {
		return ErrDuplicatePush
	}
	if err := p.c.MergeMax(enh); err != nil {
		return fmt.Errorf("spread point %d: apply enhancement: %w", p.id, err)
	}
	p.enhApplied = true
	return nil
}

// isNilSketch reports whether a sketch value is absent: sketch
// implementations are pointer types, and a nil pointer is the "no
// aggregate yet" signal during cluster start-up. Not on the hot path (at
// most a few calls per epoch).
func isNilSketch(s any) bool {
	if s == nil {
		return true
	}
	v := reflect.ValueOf(s)
	return v.Kind() == reflect.Pointer && v.IsNil()
}

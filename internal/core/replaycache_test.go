package core

import (
	"math"
	"testing"

	"repro/internal/rskt"
)

// replayFixture builds a spread center with mixed widths, feeds it
// `epochs` epochs of deterministic traffic, mirrors every accepted
// upload into a mapHistSource (the encoded-cell shape the epoch log
// presents), and records the live answer at every epoch boundary.
func replayFixture(t *testing.T, epochs int64) (*SpreadCenter[*rskt.Sketch], *mapHistSource[*rskt.Sketch], []liveAnswer) {
	t.Helper()
	const (
		n, flows = 4, 5
		m, seed  = 16, 9
	)
	params := map[int]rskt.Params{
		0: {W: 32, M: m, Seed: seed},
		1: {W: 32, M: m, Seed: seed},
		2: {W: 64, M: m, Seed: seed},
	}
	ctr, err := NewSpreadCenter(n, params)
	if err != nil {
		t.Fatal(err)
	}
	src := &mapHistSource[*rskt.Sketch]{
		cells: map[[2]int64][]byte{},
		dec: func(b []byte) (*rskt.Sketch, error) {
			var sk rskt.Sketch
			if err := sk.UnmarshalBinary(b); err != nil {
				return nil, err
			}
			return &sk, nil
		},
	}
	var recorded []liveAnswer
	for k := int64(1); k <= epochs; k++ {
		for id, p := range params {
			b := rskt.New(p)
			for f := uint64(0); f < flows; f++ {
				for i := 0; i < 8; i++ {
					b.Record(f, uint64(id)<<40|uint64(k)<<20|f<<8|uint64(i)%13)
				}
			}
			if err := ctr.Receive(id, k, b); err != nil {
				t.Fatal(err)
			}
			blob, ok, err := ctr.MarshalUpload(id, k, (*rskt.Sketch).MarshalBinaryCompact)
			if err != nil || !ok {
				t.Fatalf("MarshalUpload(%d, %d) = ok=%v err=%v", id, k, ok, err)
			}
			src.cells[[2]int64{int64(id), k}] = blob
		}
		if k < 2 {
			continue
		}
		for f := uint64(0); f < flows; f++ {
			est, cov, err := ctr.QueryWindowLive(f, k)
			if err != nil {
				t.Fatal(err)
			}
			recorded = append(recorded, liveAnswer{f, k, est, cov})
		}
	}
	return ctr, src, recorded
}

// The cache exactness contract: a warm replay — partials and window
// memos served from memory — must be bit-identical to the cold replay,
// which is itself bit-identical to the recorded live answer. Sliding a
// range window across the history must stay exact at every step.
func TestHistoryReplayCacheBitIdentical(t *testing.T) {
	const epochs = 12
	ctr, src, recorded := replayFixture(t, epochs)
	ctr.EnableReplayCache(64 << 20)

	for _, want := range recorded {
		for pass := 0; pass < 3; pass++ { // 0: cold, 1: memo-warm, 2: still warm
			got, cov, err := ctr.QueryAtFrom(want.f, want.k, src)
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(got) != math.Float64bits(want.est) {
				t.Fatalf("pass %d: QueryAtFrom(f=%d, k=%d) = %v, live answer was %v",
					pass, want.f, want.k, got, want.est)
			}
			if cov != want.cov {
				t.Fatalf("pass %d: QueryAtFrom(f=%d, k=%d) coverage %+v, live was %+v",
					pass, want.f, want.k, cov, want.cov)
			}
		}
	}
	st, ok := ctr.ReplayCacheStats()
	if !ok {
		t.Fatal("ReplayCacheStats reports no cache after EnableReplayCache")
	}
	if st.Hits == 0 || st.Misses == 0 || st.WindowHits == 0 || st.Entries == 0 {
		t.Fatalf("cache never exercised: %+v", st)
	}

	// Sliding window: each step shares all but one epoch with the last.
	// The cold answers come from a detached-cache replay of the same
	// center state; the cached slide must match them bit for bit.
	const win = 4
	type answer struct {
		est float64
		cov Coverage
	}
	cold := map[int64]answer{}
	ctr.EnableReplayCache(0) // detach: pure from-scratch replay
	for from := int64(1); from+win-1 <= epochs; from++ {
		est, cov, err := ctr.QueryRangeFrom(3, from, from+win-1, src)
		if err != nil {
			t.Fatal(err)
		}
		cold[from] = answer{est, cov}
	}
	ctr.EnableReplayCache(64 << 20)
	for from := int64(1); from+win-1 <= epochs; from++ {
		est, cov, err := ctr.QueryRangeFrom(3, from, from+win-1, src)
		if err != nil {
			t.Fatal(err)
		}
		want := cold[from]
		if math.Float64bits(est) != math.Float64bits(want.est) || cov != want.cov {
			t.Fatalf("slide from=%d: warm (%v, %+v) != cold (%v, %+v)",
				from, est, cov, want.est, want.cov)
		}
	}
}

// Eviction honesty across compaction: when the store drops epochs and
// the invalidation hook fires, the cache must stop serving them — the
// warm answer degrades to the surviving cells with honest coverage,
// bit-identical to a from-scratch replay of the degraded source.
func TestHistoryReplayCacheInvalidation(t *testing.T) {
	const epochs = 10
	ctr, src, _ := replayFixture(t, epochs)
	ctr.EnableReplayCache(64 << 20)

	const f, k = 2, int64(epochs)
	warm := func() (float64, Coverage) {
		t.Helper()
		est, cov, err := ctr.QueryAtFrom(f, k, src)
		if err != nil {
			t.Fatal(err)
		}
		return est, cov
	}
	_, full := warm() // prime partials and memo
	if !full.Full() {
		t.Fatalf("pre-eviction coverage not full: %+v", full)
	}

	// Compaction evicts epoch k-1 (all points): the store-side hook is
	// InvalidateReplayEpochs — exactly what durable.LogConfig.OnEvict
	// wires up in transport.
	for id := 0; id < 3; id++ {
		src.drop(id, k-1)
	}
	ctr.InvalidateReplayEpochs(k-1, k-1)

	est, cov := warm()
	if cov.EpochsMerged != full.EpochsMerged-3 || cov.EpochsExpected != full.EpochsExpected {
		t.Fatalf("post-eviction coverage %+v, want merged %d/%d (cache served an evicted epoch?)",
			cov, full.EpochsMerged-3, full.EpochsExpected)
	}
	// Bit-identical to the detached-cache replay of the degraded source.
	ctr.EnableReplayCache(0)
	est2, cov2, err := ctr.QueryAtFrom(f, k, src)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(est) != math.Float64bits(est2) || cov != cov2 {
		t.Fatalf("post-eviction warm (%v, %+v) != cold (%v, %+v)", est, cov, est2, cov2)
	}
	ctr.EnableReplayCache(64 << 20)
	st, _ := ctr.ReplayCacheStats()
	if st.Invalidations != 0 {
		t.Fatalf("EnableReplayCache must start a fresh cache, got %+v", st)
	}

	// A late append to an already-cached epoch must also invalidate: the
	// backfilled cell joins the next answer instead of being masked by a
	// stale partial.
	warm() // rebuild the cache over the degraded source
	for id := 0; id < 3; id++ {
		src.cells[[2]int64{int64(id), k - 1}] = src.cells[[2]int64{int64(id), k}]
	}
	ctr.InvalidateReplayEpochs(k-1, k-1)
	_, cov = warm()
	if cov.EpochsMerged != full.EpochsMerged {
		t.Fatalf("backfilled epoch not picked up warm: %+v, want %d merged", cov, full.EpochsMerged)
	}
}

// A topology weight change must re-key the cache: answers after
// SetWeight are computed under the new generation, never served from
// partials joined under the old weights.
func TestHistoryReplayCacheTopologyGeneration(t *testing.T) {
	const epochs = 8
	ctr, src, _ := replayFixture(t, epochs)
	const f, k = 1, int64(epochs)

	// New-generation truth, computed without any cache.
	ctr.SetWeight(0, 3)
	wantEst, wantCov, err := ctr.QueryAtFrom(f, k, src)
	if err != nil {
		t.Fatal(err)
	}
	ctr.SetWeight(0, 1)

	ctr.EnableReplayCache(64 << 20)
	_, oldCov, err := ctr.QueryAtFrom(f, k, src) // prime under weight 1
	if err != nil {
		t.Fatal(err)
	}
	if oldCov == wantCov {
		t.Fatalf("weight change does not alter coverage (%+v); generation test is vacuous", oldCov)
	}
	ctr.SetWeight(0, 3)
	got, cov, err := ctr.QueryAtFrom(f, k, src)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(got) != math.Float64bits(wantEst) || cov != wantCov {
		t.Fatalf("post-SetWeight answer (%v, %+v) != uncached truth (%v, %+v) — stale generation served",
			got, cov, wantEst, wantCov)
	}
}

// A byte budget far below one window's partials forces LRU eviction;
// answers must stay bit-identical to the unbounded-cache run while the
// eviction counter proves the budget was enforced.
func TestHistoryReplayCacheBudgetEviction(t *testing.T) {
	const epochs = 10
	ctr, src, recorded := replayFixture(t, epochs)
	ctr.EnableReplayCache(1 << 10) // ~1 KiB: a couple of partials at most

	for _, want := range recorded {
		for pass := 0; pass < 2; pass++ {
			got, cov, err := ctr.QueryAtFrom(want.f, want.k, src)
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(got) != math.Float64bits(want.est) || cov != want.cov {
				t.Fatalf("budget-starved cache wrong at (f=%d, k=%d): (%v, %+v) want (%v, %+v)",
					want.f, want.k, got, cov, want.est, want.cov)
			}
		}
	}
	st, _ := ctr.ReplayCacheStats()
	if st.Evictions == 0 {
		t.Fatalf("1 KiB budget never evicted: %+v", st)
	}
	if st.Bytes > 1<<10 {
		t.Fatalf("cache bytes %d exceed the %d budget", st.Bytes, 1<<10)
	}
}

package core

import "repro/internal/xhash"

// flowShardTag decorrelates the shard-routing hash from every other use
// of the flow key (sketch rows, ingest striping): the same seed feeds
// them all, and an undecorated Hash64(f, seed) is exactly what the
// sketches row-index with.
const flowShardTag = 0x7ea8_51ab_c911_f03d

// FlowPartition hash-partitions flow space across n center shards. Every
// node of a sharded deployment (points routing records, the query router
// fanning T-queries, relays validating shard ids) must build it from the
// same (seed, n) pair — the partition is the deployment's contract, and
// a flow's owner is a pure function of the key.
//
// Sharding by flow is what keeps the per-shard answers exact: each flow's
// packets land wholly in one shard's sub-sketches, so the union of the
// shards' query states equals the unsharded sketch bit for bit (both
// merge algebras distribute over a disjoint partition of the input), and
// the owning shard plus a cross-shard union reproduce the flat answers
// exactly (Thm 6.1/6.3 survive the split).
type FlowPartition struct {
	seed uint64
	div  xhash.Divisor
}

// NewFlowPartition creates the routing function for n shards (n >= 1)
// under the deployment seed.
func NewFlowPartition(seed uint64, n int) FlowPartition {
	if n < 1 {
		n = 1
	}
	return FlowPartition{seed: seed ^ flowShardTag, div: xhash.NewDivisor(n)}
}

// N is the shard count.
func (p FlowPartition) N() int { return p.div.N() }

// Shard returns the owning shard of flow f, in [0, N).
func (p FlowPartition) Shard(f uint64) int {
	return int(p.div.Mod(xhash.Hash64(f, p.seed)))
}

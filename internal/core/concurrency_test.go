package core

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/countmin"
	"repro/internal/rskt"
)

// The live deployment records packets, answers queries, rolls epochs and
// applies center pushes from different goroutines. These tests exist to
// fail under `go test -race` if the point types ever lose their locking.

func TestSpreadPointConcurrentAccess(t *testing.T) {
	pt, err := NewSpreadPoint(0, rskt.Params{W: 64, M: 32, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	agg := rskt.New(rskt.Params{W: 64, M: 32, Seed: 1})
	for e := 0; e < 100; e++ {
		agg.Record(5, uint64(e))
	}
	var wg sync.WaitGroup
	wg.Add(4)
	go func() {
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			pt.Record(uint64(i%50), uint64(i))
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			_ = pt.Query(uint64(i % 50))
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			_ = pt.EndEpoch()
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			// Target a bogus epoch about half the time; stale pushes must
			// be rejected, not merged.
			err := pt.ApplyAggregateAt(int64(i%100), agg)
			if err != nil && !errors.Is(err, ErrStaleEpoch) {
				t.Errorf("unexpected apply error: %v", err)
				return
			}
		}
	}()
	wg.Wait()
}

func TestSizePointConcurrentAccess(t *testing.T) {
	pt, err := NewSizePoint(0, countmin.Params{D: 4, W: 128, Seed: 1}, SizeModeCumulative)
	if err != nil {
		t.Fatal(err)
	}
	agg := countmin.New(countmin.Params{D: 4, W: 128, Seed: 1})
	agg.Add(3, 10)
	var wg sync.WaitGroup
	wg.Add(4)
	go func() {
		defer wg.Done()
		for i := 0; i < 5000; i++ {
			pt.Record(uint64(i % 100))
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 5000; i++ {
			_ = pt.Query(uint64(i % 100))
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			_ = pt.EndEpoch()
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			err := pt.ApplyEnhancementAt(int64(i%100), agg)
			if err != nil && !errors.Is(err, ErrStaleEpoch) {
				t.Errorf("unexpected apply error: %v", err)
				return
			}
		}
	}()
	wg.Wait()
}

func TestCentersConcurrentAccess(t *testing.T) {
	spreadParams := map[int]rskt.Params{0: {W: 16, M: 16, Seed: 1}, 1: {W: 16, M: 16, Seed: 1}}
	sc, err := NewSpreadCenter(5, spreadParams)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for x := 0; x < 2; x++ {
		x := x
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := int64(1); k <= 30; k++ {
				b := rskt.New(spreadParams[x])
				b.Record(uint64(k), uint64(x))
				if err := sc.Receive(x, k, b); err != nil {
					t.Errorf("receive: %v", err)
					return
				}
				if _, err := sc.AggregateFor(x, k+1); err != nil {
					t.Errorf("aggregate: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

package core

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/countmin"
	"repro/internal/rskt"
)

// The live deployment records packets, answers queries, rolls epochs and
// applies center pushes from different goroutines. These tests exist to
// fail under `go test -race` if the point types ever lose their locking.

func TestSpreadPointConcurrentAccess(t *testing.T) {
	pt, err := NewSpreadPoint(0, rskt.Params{W: 64, M: 32, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	agg := rskt.New(rskt.Params{W: 64, M: 32, Seed: 1})
	for e := 0; e < 100; e++ {
		agg.Record(5, uint64(e))
	}
	var wg sync.WaitGroup
	wg.Add(5)
	go func() {
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			pt.Record(uint64(i%50), uint64(i))
		}
	}()
	go func() {
		defer wg.Done()
		batch := make([]SpreadPacket, 64)
		for i := 0; i < 30; i++ {
			for j := range batch {
				batch[j] = SpreadPacket{Flow: uint64(j % 50), Elem: uint64(i*64 + j)}
			}
			pt.RecordBatch(batch)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			_ = pt.Query(uint64(i % 50))
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			_ = pt.EndEpoch()
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			// Target a bogus epoch about half the time; stale pushes must
			// be rejected, not merged.
			err := pt.ApplyAggregateAt(int64(i%100), agg)
			if err != nil && !errors.Is(err, ErrStaleEpoch) && !errors.Is(err, ErrDuplicatePush) {
				t.Errorf("unexpected apply error: %v", err)
				return
			}
		}
	}()
	wg.Wait()
}

func TestSizePointConcurrentAccess(t *testing.T) {
	pt, err := NewSizePoint(0, countmin.Params{D: 4, W: 128, Seed: 1}, SizeModeCumulative)
	if err != nil {
		t.Fatal(err)
	}
	agg := countmin.New(countmin.Params{D: 4, W: 128, Seed: 1})
	agg.Add(3, 10)
	var wg sync.WaitGroup
	wg.Add(5)
	go func() {
		defer wg.Done()
		for i := 0; i < 5000; i++ {
			pt.Record(uint64(i % 100))
		}
	}()
	go func() {
		defer wg.Done()
		batch := make([]uint64, 64)
		for i := 0; i < 30; i++ {
			for j := range batch {
				batch[j] = uint64((i*64 + j) % 100)
			}
			pt.RecordBatch(batch)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 5000; i++ {
			_ = pt.Query(uint64(i % 100))
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			_ = pt.EndEpoch()
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			err := pt.ApplyEnhancementAt(int64(i%100), agg)
			if err != nil && !errors.Is(err, ErrStaleEpoch) && !errors.Is(err, ErrDuplicatePush) {
				t.Errorf("unexpected apply error: %v", err)
				return
			}
		}
	}()
	wg.Wait()
}

// The sharded ingest path must not change a single estimate: the shard
// fold is counter-wise add (size) / register-wise max (spread), both exact
// under the protocol's merge algebra. These tests hammer a sharded point
// from several goroutines — singles, batches and concurrent queries — and
// demand the upload and every post-boundary answer be identical to a
// single-shard point fed the same multiset sequentially.

func TestSizePointShardedEqualsSequential(t *testing.T) {
	for _, tc := range []struct {
		name string
		mode SizeMode
	}{
		{"cumulative", SizeModeCumulative},
		{"delta", SizeModeDelta},
	} {
		t.Run(tc.name, func(t *testing.T) {
			params := countmin.Params{D: 4, W: 256, Seed: 7}
			pt, err := NewSizePointShards(0, params, tc.mode, 4)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := NewSizePointShards(0, params, tc.mode, 1)
			if err != nil {
				t.Fatal(err)
			}
			const workers = 4
			const perWorker = 4000
			flow := func(w, i int) uint64 { return uint64(w*perWorker+i) % 300 }

			stop := make(chan struct{})
			var qwg sync.WaitGroup
			qwg.Add(1)
			go func() {
				defer qwg.Done()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
						_ = pt.Query(uint64(i % 300))
					}
				}
			}()
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				w := w
				wg.Add(1)
				go func() {
					defer wg.Done()
					if w%2 == 0 {
						for i := 0; i < perWorker; i++ {
							pt.Record(flow(w, i))
						}
						return
					}
					var batch []uint64
					for i := 0; i < perWorker; i++ {
						batch = append(batch, flow(w, i))
						if len(batch) == 64 {
							pt.RecordBatch(batch)
							batch = batch[:0]
						}
					}
					pt.RecordBatch(batch)
				}()
			}
			wg.Wait()
			close(stop)
			qwg.Wait()

			for w := 0; w < workers; w++ {
				for i := 0; i < perWorker; i++ {
					ref.Record(flow(w, i))
				}
			}
			// Mid-epoch answers must already agree (on-the-fly fold).
			for f := uint64(0); f < 300; f++ {
				if got, want := pt.Query(f), ref.Query(f); got != want {
					t.Fatalf("mid-epoch query(%d): sharded %d, sequential %d", f, got, want)
				}
			}
			up, refUp := pt.EndEpoch(), ref.EndEpoch()
			if !up.Equal(refUp) {
				t.Fatal("sharded upload differs from sequential upload")
			}
			for f := uint64(0); f < 300; f++ {
				if got, want := pt.Query(f), ref.Query(f); got != want {
					t.Fatalf("post-boundary query(%d): sharded %d, sequential %d", f, got, want)
				}
			}
		})
	}
}

func TestSpreadPointShardedEqualsSequential(t *testing.T) {
	params := rskt.Params{W: 64, M: 32, Seed: 7}
	pt, err := NewSpreadPointShardsOf(0, func() *rskt.Sketch { return rskt.New(params) }, 4)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewSpreadPointShardsOf(0, func() *rskt.Sketch { return rskt.New(params) }, 1)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 4
	const perWorker = 4000
	packet := func(w, i int) SpreadPacket {
		n := uint64(w*perWorker + i)
		return SpreadPacket{Flow: n % 100, Elem: n * 0x9E3779B97F4A7C15}
	}

	stop := make(chan struct{})
	var qwg sync.WaitGroup
	qwg.Add(1)
	go func() {
		defer qwg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				_ = pt.Query(uint64(i % 100))
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			if w%2 == 0 {
				for i := 0; i < perWorker; i++ {
					p := packet(w, i)
					pt.Record(p.Flow, p.Elem)
				}
				return
			}
			var batch []SpreadPacket
			for i := 0; i < perWorker; i++ {
				batch = append(batch, packet(w, i))
				if len(batch) == 64 {
					pt.RecordBatch(batch)
					batch = batch[:0]
				}
			}
			pt.RecordBatch(batch)
		}()
	}
	wg.Wait()
	close(stop)
	qwg.Wait()

	for w := 0; w < workers; w++ {
		for i := 0; i < perWorker; i++ {
			p := packet(w, i)
			ref.Record(p.Flow, p.Elem)
		}
	}
	for f := uint64(0); f < 100; f++ {
		if got, want := pt.Query(f), ref.Query(f); got != want {
			t.Fatalf("mid-epoch query(%d): sharded %v, sequential %v", f, got, want)
		}
	}
	up, refUp := pt.EndEpoch(), ref.EndEpoch()
	if !up.Equal(refUp) {
		t.Fatal("sharded upload differs from sequential upload")
	}
	for f := uint64(0); f < 100; f++ {
		if got, want := pt.Query(f), ref.Query(f); got != want {
			t.Fatalf("post-boundary query(%d): sharded %v, sequential %v", f, got, want)
		}
	}
}

func TestCentersConcurrentAccess(t *testing.T) {
	spreadParams := map[int]rskt.Params{0: {W: 16, M: 16, Seed: 1}, 1: {W: 16, M: 16, Seed: 1}}
	sc, err := NewSpreadCenter(5, spreadParams)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for x := 0; x < 2; x++ {
		x := x
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := int64(1); k <= 30; k++ {
				b := rskt.New(spreadParams[x])
				b.Record(uint64(k), uint64(x))
				if err := sc.Receive(x, k, b); err != nil {
					t.Errorf("receive: %v", err)
					return
				}
				if _, err := sc.AggregateFor(x, k+1); err != nil {
					t.Errorf("aggregate: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

package core

// UploadMeta rides along with an epoch upload and tells the center which
// center-sent sketches the upload's lineage actually absorbed. A healthy
// deployment always merges every push, so the flags are always true there;
// under faults (dropped or stale pushes, reconnects) they let the
// flow-size design's cumulative inversion subtract exactly what the point
// merged — no more, no less — keeping recovered deltas exact instead of
// silently corrupting the window.
type UploadMeta struct {
	// Epoch is the epoch the upload measures (the epoch that just ended).
	Epoch int64
	// AggApplied reports whether the center aggregate belonging to this
	// upload's lineage was merged: for a cumulative C upload of epoch e,
	// the aggregate applied during e-1; for a rebase C' upload of epoch e,
	// the aggregate applied during e.
	AggApplied bool
	// EnhApplied reports whether the enhancement applied during the
	// upload's epoch was merged (cumulative C uploads only; C' never
	// holds the enhancement).
	EnhApplied bool
	// Rebase marks a C' upload sent to reseed cumulative recovery after
	// the point lost buffered uploads: C' holds only the finished epoch's
	// delta (plus the aggregate applied during it), so the center can
	// recover the delta without the missing previous epoch.
	Rebase bool
}

package core

import (
	"math"
	"testing"

	"repro/internal/vhll"
)

// The three-sketch design is generic over its epoch sketch (the paper:
// "the same design can be easily modified to work with other sketches").
// These tests run the full protocol with vHLL as the epoch sketch.

var _ SpreadSketch[*vhll.Sketch] = (*vhll.Sketch)(nil)

func newVhllCluster(t *testing.T, n int, sizes []int, virtual int, seed uint64) (
	[]*SpreadPoint[*vhll.Sketch], *SpreadCenter[*vhll.Sketch]) {
	t.Helper()
	protos := make(map[int]*vhll.Sketch, len(sizes))
	points := make([]*SpreadPoint[*vhll.Sketch], len(sizes))
	for x, m := range sizes {
		params := vhll.Params{PhysicalRegisters: m, VirtualRegisters: virtual, Seed: seed}
		proto, err := vhll.New(params)
		if err != nil {
			t.Fatal(err)
		}
		protos[x] = proto
		pt, err := NewSpreadPointOf(x, func() *vhll.Sketch {
			s, err := vhll.New(params)
			if err != nil {
				t.Fatal(err)
			}
			return s
		})
		if err != nil {
			t.Fatal(err)
		}
		points[x] = pt
	}
	center, err := NewSpreadCenterOf(n, protos)
	if err != nil {
		t.Fatal(err)
	}
	return points, center
}

func TestVhllProtocolMatchesIdealUniform(t *testing.T) {
	// Theorem 6.1's equality argument only needs union-mergeability, so it
	// holds for vHLL too: the protocol's C equals the ideal single vHLL
	// over the approximate networkwide T-stream.
	const (
		n, p, m = 5, 3, 1 << 12
		epochs  = 8
		virtual = 64
		seed    = 31
	)
	packets := genEpochPackets(p, epochs, 30, 25, 3)
	points, center := newVhllCluster(t, n, []int{m, m, m}, virtual, seed)
	for k := 1; k <= epochs; k++ {
		for x, ps := range packets[k-1] {
			for _, q := range ps {
				points[x].Record(q.f, q.e)
			}
		}
		for x, pt := range points {
			if err := center.Receive(x, int64(k), pt.EndEpoch()); err != nil {
				t.Fatal(err)
			}
		}
		for x, pt := range points {
			agg, err := center.AggregateFor(x, int64(k)+1)
			if err != nil {
				t.Fatal(err)
			}
			if err := pt.ApplyAggregate(agg); err != nil {
				t.Fatal(err)
			}
		}
	}
	kNext := epochs + 1
	for x := range points {
		x := x
		ideal, err := vhll.New(vhll.Params{PhysicalRegisters: m, VirtualRegisters: virtual, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		for ek := range packets {
			epoch := ek + 1
			for ex := range packets[ek] {
				in := epoch >= kNext-n+1 && epoch <= kNext-2 || (epoch == kNext-1 && ex == x)
				if !in {
					continue
				}
				for _, q := range packets[ek][ex] {
					ideal.Record(q.f, q.e)
				}
			}
		}
		for f := uint64(0); f < 30; f++ {
			if got, want := points[x].Query(f), ideal.Estimate(f); got != want {
				t.Fatalf("point %d flow %d: vHLL protocol %.4f != ideal %.4f", x, f, got, want)
			}
		}
	}
}

func TestVhllProtocolDiversityAccuracy(t *testing.T) {
	// Device diversity with vHLL: power-of-two physical sizes join via
	// the same expand-and-compress, and estimates stay in the right
	// ballpark at every point.
	const (
		n, p    = 5, 3
		epochs  = 8
		virtual = 64
		seed    = 17
	)
	packets := genEpochPackets(p, epochs, 20, 40, 9)
	points, center := newVhllCluster(t, n, []int{1 << 12, 1 << 13, 1 << 14}, virtual, seed)
	for k := 1; k <= epochs; k++ {
		for x, ps := range packets[k-1] {
			for _, q := range ps {
				points[x].Record(q.f, q.e)
			}
		}
		for x, pt := range points {
			if err := center.Receive(x, int64(k), pt.EndEpoch()); err != nil {
				t.Fatal(err)
			}
		}
		for x, pt := range points {
			agg, err := center.AggregateFor(x, int64(k)+1)
			if err != nil {
				t.Fatal(err)
			}
			if err := pt.ApplyAggregate(agg); err != nil {
				t.Fatal(err)
			}
		}
	}
	kNext := epochs + 1
	truth := make(map[uint64]map[uint64]struct{})
	for ek := range packets {
		epoch := ek + 1
		for ex := range packets[ek] {
			if epoch >= kNext-n+1 && epoch <= kNext-2 || (epoch == kNext-1 && ex == 0) {
				for _, q := range packets[ek][ex] {
					if truth[q.f] == nil {
						truth[q.f] = make(map[uint64]struct{})
					}
					truth[q.f][q.e] = struct{}{}
				}
			}
		}
	}
	for f := uint64(0); f < 20; f++ {
		got := points[0].Query(f)
		want := float64(len(truth[f]))
		if math.Abs(got-want) > 0.8*want+40 {
			t.Fatalf("flow %d: vHLL diversity estimate %.0f, truth %.0f", f, got, want)
		}
	}
}

func TestGenericConstructorValidation(t *testing.T) {
	if _, err := NewSpreadPointOf[*vhll.Sketch](0, nil); err == nil {
		t.Fatal("expected error for nil constructor")
	}
	if _, err := NewSpreadCenterOf[*vhll.Sketch](5, map[int]*vhll.Sketch{0: nil}); err == nil {
		t.Fatal("expected error for nil prototype")
	}
	a, err := vhll.New(vhll.Params{PhysicalRegisters: 64, VirtualRegisters: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := vhll.New(vhll.Params{PhysicalRegisters: 64, VirtualRegisters: 32, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSpreadCenterOf(5, map[int]*vhll.Sketch{0: a, 1: b}); err == nil {
		t.Fatal("expected incompatibility error (different virtual sizes)")
	}
	c, err := vhll.New(vhll.Params{PhysicalRegisters: 96, VirtualRegisters: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSpreadCenterOf(5, map[int]*vhll.Sketch{0: a, 1: c}); err == nil {
		t.Fatal("expected non-dividing width error")
	}
}

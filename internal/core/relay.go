package core

import (
	"fmt"
	"sync"
)

// Relay is a mid-level node of an aggregation tree: it ingests the
// per-epoch uploads of its children (leaf points or deeper relays),
// merges them under the design's algebra, and hands the combined sketch
// upstream as a single upload. The ST join is associative and
// commutative, and ExpandTo is a homomorphism of both merge algebras
// (expand(a ⊕ b) = expand(a) ⊕ expand(b), and expansions compose along a
// divisibility chain of widths), so a center fed through relays computes
// bit-identically the same join as a flat center fed the leaf uploads —
// the Thm 6.1/6.3 equalities survive the tree (see DESIGN.md §13).
//
// A relay only ever sees per-epoch deltas: cumulative uploads cannot
// pass through it, because the merge of c children's cumulative sketches
// contains c copies of every center push and no single subtraction can
// invert that. Size-design trees therefore run ModeDelta end to end
// (NewRelay rejects ModeCumulative), which the flat cumulative design
// equals exactly on healthy traces — the inversion recovers the same
// integer deltas the points would have uploaded directly.
//
// Forwarding discipline: an epoch's combined upload becomes available
// (Next) only when every child has reported it and every earlier epoch
// has been forwarded. Strict in-order forwarding is what an additive
// upstream center requires (it drops out-of-order uploads), and the
// all-children barrier keeps coverage accounting all-or-nothing per
// relay-epoch: a forwarded upload always represents the relay's whole
// subtree, so the center can weight it by the subtree's leaf count.
//
// Liveness: a round stalls until every child reports, and children
// buffer and retransmit across outages — but their retransmit buffers
// hold at most one window, so a round EVERY child has moved a full
// window past can never complete. Receive abandons such dead rounds
// (advances the forwarding position past them), otherwise an outage
// longer than the window would wedge the barrier — and the whole
// subtree — forever. The skipped epochs surface upstream as permanently
// incomplete center rounds, the same honest coverage degradation a flat
// center reports when a point's uploads age out.
type Relay[S Sketch[S]] struct {
	mu sync.Mutex

	design   string
	windowN  int
	additive bool

	protos  map[int]S   // zero-state prototype per child (width + shape)
	weights map[int]int // leaf count under each child (>= 1)
	weight  int         // total subtree leaf count
	width   int         // max child width: the relay's own upload width

	// pending[epoch] accumulates the partially merged round.
	pending map[int64]*relayRound[S]
	// lastEpoch[child] is the most recent epoch the child uploaded;
	// transports use it to resynchronize reconnecting children.
	lastEpoch map[int]int64
	// forwarded is the highest epoch handed out by Next: everything at or
	// below it is sealed, and late uploads for it are dropped as
	// duplicates (the upstream center would drop an amended re-upload the
	// same way).
	forwarded int64
}

// relayRound is one epoch's partially merged upload.
type relayRound[S Sketch[S]] struct {
	merged   S // at the relay's width
	reported map[int]bool
}

// NewRelay creates a relay for children with the given sketch prototypes
// (keyed by child id) and subtree weights (leaf count per child; 0 or a
// missing entry means 1, i.e. a leaf point). All prototypes must be
// mutually compatible and the maximum width must be a multiple of every
// width, exactly as at a center. cfg.Mode must be ModeDelta: relays merge
// per-epoch measurements, and cumulative uploads are not mergeable.
func NewRelay[S Sketch[S]](windowN int, protos map[int]S, weights map[int]int, cfg EngineConfig[S]) (*Relay[S], error) {
	if windowN < 3 {
		return nil, fmt.Errorf("core: window n must be >= 3, got %d", windowN)
	}
	if len(protos) == 0 {
		return nil, fmt.Errorf("core: relay has no children")
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Mode != ModeDelta {
		return nil, fmt.Errorf("core: relays require delta-mode uploads (cumulative sketches cannot be pre-merged)")
	}
	width := 0
	var ref S
	haveRef := false
	for _, p := range protos {
		if IsNil(p) {
			return nil, fmt.Errorf("core: nil sketch prototype")
		}
		if p.Width() > width {
			width = p.Width()
		}
		if !haveRef {
			ref = p
			haveRef = true
		}
	}
	for id, p := range protos {
		if !ref.Compatible(p) {
			return nil, fmt.Errorf("core: child %d's sketch is incompatible with the relay", id)
		}
		if width%p.Width() != 0 {
			return nil, fmt.Errorf("core: width %d of child %d does not divide relay width %d", p.Width(), id, width)
		}
	}
	r := &Relay[S]{
		design:    cfg.Design,
		windowN:   windowN,
		additive:  cfg.Additive,
		protos:    make(map[int]S, len(protos)),
		weights:   make(map[int]int, len(protos)),
		width:     width,
		pending:   make(map[int64]*relayRound[S]),
		lastEpoch: make(map[int]int64, len(protos)),
	}
	for id, p := range protos {
		r.protos[id] = p.Clone()
		w := weights[id]
		if w < 1 {
			w = 1
		}
		r.weights[id] = w
		r.weight += w
	}
	return r, nil
}

// Width is the relay's upstream upload width: the maximum child width.
func (r *Relay[S]) Width() int { return r.width }

// Weight is the relay's total subtree leaf count — what the upstream
// center weights each combined upload by in its coverage accounting.
func (r *Relay[S]) Weight() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.weight
}

// ChildWeight returns the subtree leaf count under one child (0 for an
// unknown child).
func (r *Relay[S]) ChildWeight(child int) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.weights[child]
}

// Children returns the configured child ids (unordered).
func (r *Relay[S]) Children() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	ids := make([]int, 0, len(r.protos))
	for id := range r.protos {
		ids = append(ids, id)
	}
	return ids
}

// Receive ingests one child's upload for an epoch: the sketch is expanded
// to the relay width and merged into the epoch's combined round. A second
// upload from the same child for the same epoch, or any upload for an
// already-forwarded epoch, is dropped idempotently (ErrDuplicateUpload),
// so retransmissions after a redial are safe. The upload is never
// retained: callers may reuse the sketch.
func (r *Relay[S]) Receive(child int, epoch int64, up S) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	proto, ok := r.protos[child]
	if !ok {
		return fmt.Errorf("core: unknown %s relay child %d", r.design, child)
	}
	if IsNil(up) || !proto.Compatible(up) || proto.Width() != up.Width() {
		return fmt.Errorf("core: upload from child %d does not match its declared sketch", child)
	}
	if epoch < 1 {
		return fmt.Errorf("core: child %d uploaded impossible epoch %d", child, epoch)
	}
	if epoch > r.lastEpoch[child] {
		r.lastEpoch[child] = epoch
	}
	r.abandonDeadLocked()
	if epoch <= r.forwarded {
		return ErrDuplicateUpload
	}
	rr := r.pending[epoch]
	if rr == nil {
		rr = &relayRound[S]{reported: make(map[int]bool, len(r.protos))}
		r.pending[epoch] = rr
	}
	if rr.reported[child] {
		return ErrDuplicateUpload
	}
	// ExpandTo always returns a fresh sketch (even at equal widths), so the
	// round never aliases the caller's upload.
	e, err := up.ExpandTo(r.width)
	if err != nil {
		return fmt.Errorf("core: expand child %d epoch %d: %w", child, epoch, err)
	}
	if IsNil(rr.merged) {
		rr.merged = e
	} else if err := rr.merged.Merge(e); err != nil {
		return fmt.Errorf("core: relay merge child %d epoch %d: %w", child, epoch, err)
	}
	rr.reported[child] = true
	r.trimLocked()
	return nil
}

// Next pops the next combined upload ready to travel upstream: the epoch
// right after the last forwarded one, once every child has reported it.
// The returned sketch is owned by the caller. Call in a loop — several
// epochs can complete back to back when a lagging child catches up.
func (r *Relay[S]) Next() (epoch int64, combined S, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var zero S
	e := r.forwarded + 1
	rr := r.pending[e]
	if rr == nil || len(rr.reported) < len(r.protos) {
		return 0, zero, false
	}
	delete(r.pending, e)
	r.forwarded = e
	return e, rr.merged, true
}

// LastEpoch returns the most recent epoch the child has uploaded (0 if
// none).
func (r *Relay[S]) LastEpoch(child int) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lastEpoch[child]
}

// MaxEpoch returns the most recent epoch any child has uploaded (0 if
// none) — the subtree's epoch clock as the relay sees it.
func (r *Relay[S]) MaxEpoch() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var m int64
	for _, e := range r.lastEpoch {
		if e > m {
			m = e
		}
	}
	if r.forwarded > m {
		m = r.forwarded
	}
	return m
}

// Forwarded returns the highest epoch handed out by Next.
func (r *Relay[S]) Forwarded() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.forwarded
}

// ResyncForwarded raises the forwarding position to the epoch the
// upstream center already holds (its Welcome.PointEpoch for this relay):
// a freshly restarted relay must not rebuild and re-forward epochs the
// center ingested before the crash. Pending rounds at or below the new
// position are sealed and dropped; the position never moves backward (a
// center restored from an old checkpoint re-collects the missing epochs
// from this relay's upstream retransmit buffer instead).
func (r *Relay[S]) ResyncForwarded(epoch int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if epoch <= r.forwarded {
		return
	}
	r.forwarded = epoch
	for e := range r.pending {
		if e <= epoch {
			delete(r.pending, e)
		}
	}
}

// abandonDeadLocked advances the forwarding position past rounds that
// can never complete: transports cap each child's retransmit buffer at
// one window, so once every child's latest upload is a full window past
// an unforwarded epoch, no child can re-supply it and the barrier would
// hold the subtree open forever (the post-outage wedge). Children that
// have never uploaded keep the relay waiting — nothing is known about
// their position. Caller holds r.mu.
func (r *Relay[S]) abandonDeadLocked() {
	if len(r.lastEpoch) < len(r.protos) {
		return
	}
	min := int64(-1)
	for _, e := range r.lastEpoch {
		if min < 0 || e < min {
			min = e
		}
	}
	floor := min - int64(r.windowN)
	if floor <= r.forwarded {
		return
	}
	r.forwarded = floor
	for e := range r.pending {
		if e <= floor {
			delete(r.pending, e)
		}
	}
}

// trimLocked bounds the pending-round store: a round more than one window
// ahead of the forwarding position can only exist if a child ran far
// ahead while another stalled; keeping more than a window of unmergeable
// future rounds would let a runaway (or hostile) child grow relay memory
// without bound. Trimmed rounds re-collect from the children's retransmit
// buffers while the stall stays inside one window; past that,
// abandonDeadLocked gives the rounds up instead. Caller holds r.mu.
func (r *Relay[S]) trimLocked() {
	ceil := r.forwarded + int64(r.windowN) + 1
	for e := range r.pending {
		if e > ceil {
			delete(r.pending, e)
		}
	}
}

// RelayState is the durable form of a relay's merge state: the forwarding
// position, per-child sequence positions, and the partially merged
// pending rounds. Sketch blobs are produced by the marshal function given
// to ExportState, mirroring the center's checkpoint primitives.
type RelayState struct {
	Forwarded int64
	LastEpoch map[int]int64
	// Pending[epoch] is the partially merged round: the combined sketch at
	// relay width plus the children already merged into it.
	Pending map[int64]RelayRoundState
}

// RelayRoundState is one pending epoch's durable form.
type RelayRoundState struct {
	Merged   []byte
	Reported []int
}

// ExportState snapshots the relay's merge state atomically.
func (r *Relay[S]) ExportState(marshal func(S) ([]byte, error)) (*RelayState, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := &RelayState{
		Forwarded: r.forwarded,
		LastEpoch: make(map[int]int64, len(r.lastEpoch)),
		Pending:   make(map[int64]RelayRoundState, len(r.pending)),
	}
	for id, e := range r.lastEpoch {
		st.LastEpoch[id] = e
	}
	for e, rr := range r.pending {
		var rs RelayRoundState
		if !IsNil(rr.merged) {
			data, err := marshal(rr.merged)
			if err != nil {
				return nil, fmt.Errorf("core: export relay round %d: %w", e, err)
			}
			rs.Merged = data
		}
		for id := range rr.reported {
			rs.Reported = append(rs.Reported, id)
		}
		st.Pending[e] = rs
	}
	return st, nil
}

// ImportState replaces the relay's merge state with a previously exported
// snapshot. Every child id must be known and every sketch must decode to
// the relay's width and shape — a checkpoint from a differently
// configured tree is rejected before any state is replaced. A nil state
// is a no-op.
func (r *Relay[S]) ImportState(st *RelayState, unmarshal func([]byte) (S, error)) error {
	if st == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var ref S
	for _, p := range r.protos {
		ref = p
		break
	}
	lastEpoch := make(map[int]int64, len(st.LastEpoch))
	for id, e := range st.LastEpoch {
		if _, ok := r.protos[id]; !ok {
			return fmt.Errorf("core: import: unknown %s relay child %d", r.design, id)
		}
		lastEpoch[id] = e
	}
	pending := make(map[int64]*relayRound[S], len(st.Pending))
	for e, rs := range st.Pending {
		rr := &relayRound[S]{reported: make(map[int]bool, len(rs.Reported))}
		for _, id := range rs.Reported {
			if _, ok := r.protos[id]; !ok {
				return fmt.Errorf("core: import round %d: unknown relay child %d", e, id)
			}
			rr.reported[id] = true
		}
		if len(rs.Merged) > 0 {
			sk, err := unmarshal(rs.Merged)
			if err != nil {
				return fmt.Errorf("core: import relay round %d: %w", e, err)
			}
			if IsNil(sk) || !ref.Compatible(sk) || sk.Width() != r.width {
				return fmt.Errorf("core: import relay round %d: sketch does not match the relay shape", e)
			}
			rr.merged = sk
		}
		pending[e] = rr
	}
	r.forwarded = st.Forwarded
	r.lastEpoch = lastEpoch
	r.pending = pending
	return nil
}

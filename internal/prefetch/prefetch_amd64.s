//go:build amd64

#include "textflag.h"

// func t0(p unsafe.Pointer)
TEXT ·t0(SB), NOSPLIT, $0-8
	MOVQ p+0(FP), AX
	PREFETCHT0 (AX)
	RET

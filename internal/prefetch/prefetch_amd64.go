//go:build amd64

package prefetch

import "unsafe"

// t0 is implemented in prefetch_amd64.s (PREFETCHT0).
//
//go:noescape
func t0(p unsafe.Pointer)

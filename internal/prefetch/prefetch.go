// Package prefetch exposes the CPU's software-prefetch hint for the
// batched record loops. The ingest pipeline computes a batch of sketch
// slots first (pure hashing, no memory traffic beyond the packet buffer),
// issues a prefetch for every target cache line, and only then applies the
// writes — by the time the write pass reaches a register, the line is
// already in flight or resident. On architectures without an implemented
// hint the call is a no-op and the two-pass loop still helps (the hash
// pass and the write pass each stay branch-predictable and tight).
//
// A prefetch is only ever a hint: issuing one for any address, valid or
// not, is architecturally side-effect free. Callers still must not
// dereference the pointer unless it is valid.
package prefetch

import "unsafe"

// T0 hints that the cache line containing p will be read or written soon,
// fetching it into all cache levels (temporal data). No-op where not
// implemented.
func T0(p unsafe.Pointer) { t0(p) }

//go:build !amd64

package prefetch

import "unsafe"

func t0(_ unsafe.Pointer) {}

package cputime

import (
	"runtime"
	"testing"
	"time"
)

// TestThreadAdvances burns CPU on a locked thread and checks the thread
// clock moves forward by a plausible amount (and never backwards).
func TestThreadAdvances(t *testing.T) {
	runtime.LockOSThread()
	defer runtime.UnlockOSThread()
	start, ok := Thread()
	if !ok {
		t.Skip("thread CPU clock unavailable on this platform")
	}
	deadline := time.Now().Add(20 * time.Millisecond)
	x := uint64(1)
	for time.Now().Before(deadline) {
		for i := 0; i < 1000; i++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
		}
	}
	if x == 0 { // keep the loop alive
		t.Log("unreachable")
	}
	end, ok := Thread()
	if !ok {
		t.Fatal("thread CPU clock disappeared mid-test")
	}
	if end < start {
		t.Fatalf("thread CPU clock went backwards: %v -> %v", start, end)
	}
	if end-start == 0 {
		t.Fatalf("thread CPU clock did not advance over a 20ms busy loop")
	}
}

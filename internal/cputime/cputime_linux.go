//go:build linux

// Package cputime reads per-thread CPU clocks for the scaling
// benchmarks. Wall-clock throughput of N workers saturates at the
// machine's core count; per-worker CPU cost does not — it is the
// scheduler-independent measure of how much of a core one worker's
// packet stream consumes, and therefore of how the pipeline would scale
// given enough cores. A worker that pins its OS thread
// (runtime.LockOSThread) and reads Thread() before and after its record
// loop gets exactly the cycles its own pipeline burned, excluding time
// spent preempted — so the measurement is stable even on a loaded or
// core-limited box (CI containers are routinely pinned to one core).
package cputime

import (
	"syscall"
	"time"
	"unsafe"
)

// clockThreadCPUTimeID is CLOCK_THREAD_CPUTIME_ID from <time.h>.
const clockThreadCPUTimeID = 3

// Thread returns the calling thread's consumed CPU time. The caller must
// be locked to its OS thread for the value to be attributable to it. ok
// is false if the clock is unavailable (callers fall back to wall time).
func Thread() (d time.Duration, ok bool) {
	var ts syscall.Timespec
	_, _, errno := syscall.Syscall(syscall.SYS_CLOCK_GETTIME,
		clockThreadCPUTimeID, uintptr(unsafe.Pointer(&ts)), 0)
	if errno != 0 {
		return 0, false
	}
	return time.Duration(ts.Sec)*time.Second + time.Duration(ts.Nsec), true
}

//go:build !linux

package cputime

import "time"

// Thread is unavailable off Linux; callers fall back to wall time.
func Thread() (d time.Duration, ok bool) { return 0, false }

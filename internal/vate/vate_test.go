package vate

import (
	"math"
	"testing"
)

func testParams() Params {
	return Params{VirtualBits: 2048, PhysicalCells: 1 << 18, WindowN: 5, Seed: 9}
}

func TestValidate(t *testing.T) {
	if err := testParams().Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Params{
		{VirtualBits: 0, PhysicalCells: 8, WindowN: 2},
		{VirtualBits: 8, PhysicalCells: 0, WindowN: 2},
		{VirtualBits: 8, PhysicalCells: 8, WindowN: 0},
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("expected error for %+v", bad)
		}
	}
}

func TestCellBits(t *testing.T) {
	tests := []struct{ n, want int }{
		{1, 2}, {2, 2}, {3, 3}, {6, 3}, {10, 4}, {14, 4}, {30, 5}, {60, 6},
	}
	for _, tt := range tests {
		if got := CellBits(tt.n); got != tt.want {
			t.Fatalf("CellBits(%d) = %d, want %d", tt.n, got, tt.want)
		}
	}
}

func TestCellsForMemory(t *testing.T) {
	// 2Mb, n=10 -> 4 bits/cell -> 524288 cells.
	if got := CellsForMemory(1<<21, 10); got != 524288 {
		t.Fatalf("CellsForMemory = %d, want 524288", got)
	}
	if got := CellsForMemory(1, 10); got != 1 {
		t.Fatalf("floor = %d", got)
	}
}

func TestEstimateSingleFlow(t *testing.T) {
	s := New(testParams())
	const truth = 800
	for e := 0; e < truth; e++ {
		s.Record(5, uint64(e))
	}
	got := s.Estimate(5)
	if rel := math.Abs(got-truth) / truth; rel > 0.15 {
		t.Fatalf("estimate %.0f for truth %d (rel %.3f)", got, truth, rel)
	}
}

func TestEstimateAbsentFlowNearZero(t *testing.T) {
	s := New(testParams())
	for f := uint64(0); f < 50; f++ {
		for e := 0; e < 200; e++ {
			s.Record(f, f*1000+uint64(e))
		}
	}
	sum := 0.0
	for f := uint64(1000); f < 1100; f++ {
		sum += s.Estimate(f)
	}
	if mean := sum / 100; mean > 60 {
		t.Fatalf("mean absent-flow estimate %.1f, want near 0 after noise correction", mean)
	}
}

func TestWindowExpiry(t *testing.T) {
	s := New(testParams()) // window of 5 epochs
	for e := 0; e < 500; e++ {
		s.Record(1, uint64(e))
	}
	for k := 0; k < 4; k++ {
		s.Advance()
		if got := s.Estimate(1); got < 300 {
			t.Fatalf("estimate %.0f dropped while still in window (advance %d)", got, k+1)
		}
	}
	s.Advance() // epoch 6: epoch-1 stamps leave the window
	if got := s.Estimate(1); got > 50 {
		t.Fatalf("estimate %.0f after expiry, want ~0", got)
	}
}

func TestSlidingRefresh(t *testing.T) {
	// Re-recording the same elements every epoch keeps them alive.
	s := New(testParams())
	for k := 0; k < 10; k++ {
		for e := 0; e < 300; e++ {
			s.Record(2, uint64(e))
		}
		s.Advance()
	}
	got := s.Estimate(2)
	if math.Abs(got-300) > 80 {
		t.Fatalf("refreshed flow estimate %.0f, want ~300", got)
	}
}

func TestDuplicatesDoNotInflate(t *testing.T) {
	s := New(testParams())
	for i := 0; i < 50; i++ {
		for e := 0; e < 100; e++ {
			s.Record(3, uint64(e))
		}
	}
	got := s.Estimate(3)
	if math.Abs(got-100) > 40 {
		t.Fatalf("duplicate-heavy flow estimate %.0f, want ~100", got)
	}
}

func TestResetClearsState(t *testing.T) {
	s := New(testParams())
	for e := 0; e < 100; e++ {
		s.Record(1, uint64(e))
	}
	s.Reset()
	if got := s.Estimate(1); got != 0 {
		t.Fatalf("estimate after reset = %.1f, want 0", got)
	}
	if s.Epoch() != 1 {
		t.Fatalf("epoch after reset = %d, want 1", s.Epoch())
	}
}

func TestMemoryBits(t *testing.T) {
	s := New(Params{VirtualBits: 64, PhysicalCells: 1000, WindowN: 10, Seed: 0})
	if got := s.MemoryBits(); got != 1000*4 {
		t.Fatalf("MemoryBits = %d, want 4000", got)
	}
}

func TestEstimateNonNegative(t *testing.T) {
	s := New(Params{VirtualBits: 128, PhysicalCells: 1 << 12, WindowN: 3, Seed: 1})
	for f := uint64(0); f < 200; f++ {
		s.Record(f, f)
	}
	for f := uint64(0); f < 400; f++ {
		if got := s.Estimate(f); got < 0 {
			t.Fatalf("negative estimate %.2f for flow %d", got, f)
		}
	}
}

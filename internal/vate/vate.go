// Package vate implements the VATE baseline (Xu et al., Computer
// Communications 2019) used by the paper for sliding-window flow-spread
// measurement.
//
// VATE trades memory for preserved time: each flow owns a *virtual bitmap*
// of VirtualBits positions (the paper's evaluation uses 2048) scattered by
// hashing into a large shared physical cell array, and each cell remembers
// *when* it was last set. A windowed query counts the flow's virtual cells
// whose last-set time falls inside [t-T, t), applies the linear-counting
// estimate, and subtracts the expected noise other flows contribute to the
// shared array (the virtual-bitmap correction of Yoon et al.).
//
// Timestamps are kept at epoch granularity (the window's n epochs), so one
// cell logically needs ceil(log2(n+2)) bits; the physical cell count for a
// memory budget shrinks as n grows, which is why VATE's accuracy degrades
// with larger n in Figure 13(c)-(d).
package vate

import (
	"fmt"
	"math"

	"repro/internal/bitmap"
	"repro/internal/xhash"
)

// DefaultVirtualBits is the per-flow virtual bitmap length used in the
// paper's evaluation.
const DefaultVirtualBits = 2048

// Params configures a VATE sketch.
type Params struct {
	// VirtualBits is the virtual bitmap length per flow.
	VirtualBits int
	// PhysicalCells is the number of shared timestamp cells.
	PhysicalCells int
	// WindowN is the number of epochs per window (the paper's n).
	WindowN int
	// Seed is the hash seed.
	Seed uint64
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.VirtualBits <= 0 || p.PhysicalCells <= 0 {
		return fmt.Errorf("vate: dimensions must be positive: %+v", p)
	}
	if p.WindowN < 1 {
		return fmt.Errorf("vate: window n must be >= 1, got %d", p.WindowN)
	}
	return nil
}

// CellBits returns the per-cell footprint for a window of n epochs: enough
// to distinguish the n in-window epochs, one expired state and one
// never-set state.
func CellBits(n int) int {
	bits := 1
	for 1<<bits < n+2 {
		bits++
	}
	return bits
}

// CellsForMemory returns the physical cell count fitting memBits bits for
// a window of n epochs.
func CellsForMemory(memBits, n int) int {
	c := memBits / CellBits(n)
	if c < 1 {
		c = 1
	}
	return c
}

// Sketch is a VATE instance. Not safe for concurrent use.
type Sketch struct {
	params Params
	// cells[i] is the epoch in which cell i was last set, or 0 if never.
	cells []int64
	// epoch is the current 1-based epoch.
	epoch int64
	// cachedZeros is the number of cells with no in-window stamp, valid
	// when cachedEpoch == epoch; it feeds the noise correction.
	cachedZeros int
	cachedEpoch int64
}

// New creates a zeroed sketch.
func New(p Params) *Sketch {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return &Sketch{
		params: p,
		cells:  make([]int64, p.PhysicalCells),
		epoch:  1,
	}
}

// Params returns the configuration.
func (s *Sketch) Params() Params { return s.params }

// Epoch returns the current epoch.
func (s *Sketch) Epoch() int64 { return s.epoch }

// Record notes element e of flow f at the current epoch.
func (s *Sketch) Record(f, e uint64) {
	p := &s.params
	i := xhash.Index(e^p.Seed, 1, p.VirtualBits)
	cell := xhash.HashPair(f, uint64(i), p.Seed) % uint64(p.PhysicalCells)
	s.cells[cell] = s.epoch
}

// Advance moves to the next epoch.
func (s *Sketch) Advance() {
	s.epoch++
}

// inWindow reports whether a cell stamp is live for the current window
// (the last WindowN epochs including the current one).
func (s *Sketch) inWindow(stamp int64) bool {
	return stamp > s.epoch-int64(s.params.WindowN) && stamp > 0
}

// globalZeroFraction returns the fraction of physical cells with no live
// stamp, cached per epoch.
func (s *Sketch) globalZeroFraction() float64 {
	if s.cachedEpoch != s.epoch {
		zeros := 0
		for _, st := range s.cells {
			if !s.inWindow(st) {
				zeros++
			}
		}
		s.cachedZeros = zeros
		s.cachedEpoch = s.epoch
	}
	return float64(s.cachedZeros) / float64(s.params.PhysicalCells)
}

// Estimate returns the windowed spread estimate for flow f using the
// virtual-bitmap estimator: v*ln(zGlobal) - v*ln(zFlow), where zGlobal and
// zFlow are the zero fractions of the physical array and of the flow's
// virtual bitmap.
func (s *Sketch) Estimate(f uint64) float64 {
	p := &s.params
	zerosF := 0
	for i := 0; i < p.VirtualBits; i++ {
		cell := xhash.HashPair(f, uint64(i), p.Seed) % uint64(p.PhysicalCells)
		if !s.inWindow(s.cells[cell]) {
			zerosF++
		}
	}
	v := float64(p.VirtualBits)
	zg := s.globalZeroFraction()
	var flowTerm float64
	if zerosF == 0 {
		// Saturated virtual bitmap: use the linear-counting saturation
		// stand-in, consistent with bitmap.LinearCount.
		flowTerm = bitmap.LinearCount(p.VirtualBits, 0)
	} else {
		flowTerm = v * math.Log(v/float64(zerosF))
	}
	if zg <= 0 {
		zg = 0.5 / float64(p.PhysicalCells)
	}
	est := flowTerm + v*math.Log(zg)
	if est < 0 {
		return 0
	}
	return est
}

// Reset clears all cells and restarts at epoch 1.
func (s *Sketch) Reset() {
	for i := range s.cells {
		s.cells[i] = 0
	}
	s.epoch = 1
	s.cachedEpoch = 0
	s.cachedZeros = 0
}

// MemoryBits returns the footprint under the epoch-granular timestamp
// accounting.
func (s *Sketch) MemoryBits() int {
	return s.params.PhysicalCells * CellBits(s.params.WindowN)
}

package vhll

import (
	"testing"
)

func TestMarshalRoundTrip(t *testing.T) {
	p := Params{PhysicalRegisters: 256, VirtualRegisters: 32, Seed: 9}
	s, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	for f := uint64(0); f < 50; f++ {
		for e := uint64(0); e < 20; e++ {
			s.Record(f, f<<16|e)
		}
	}
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got Sketch
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if got.params != p {
		t.Fatalf("params %+v, want %+v", got.params, p)
	}
	if !got.regs.Equal(s.regs) {
		t.Fatal("registers differ after round trip")
	}
	if a, b := s.Estimate(7), got.Estimate(7); a != b {
		t.Fatalf("estimate changed across round trip: %v vs %v", a, b)
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":     nil,
		"short":     {wireMagic, 1, 2, 3},
		"bad magic": append([]byte{0x00}, make([]byte, 32)...),
	}
	good, err := New(Params{PhysicalRegisters: 64, VirtualRegisters: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	data, _ := good.MarshalBinary()
	cases["truncated payload"] = data[:len(data)-3]
	cases["trailing bytes"] = append(append([]byte(nil), data...), 0)
	for name, in := range cases {
		var s Sketch
		if err := s.UnmarshalBinary(in); err == nil {
			t.Errorf("%s: decode accepted", name)
		}
	}
}

func FuzzUnmarshalBinary(f *testing.F) {
	good, err := New(Params{PhysicalRegisters: 64, VirtualRegisters: 16, Seed: 1})
	if err != nil {
		f.Fatal(err)
	}
	for i := uint64(0); i < 100; i++ {
		good.Record(i%7, i)
	}
	seed, _ := good.MarshalBinary()
	seedCompact, _ := good.MarshalBinaryCompact()
	f.Add(seed)
	f.Add(seedCompact)
	f.Add([]byte{wireMagic})
	f.Add([]byte{wireMagicCompact})
	f.Fuzz(func(t *testing.T, data []byte) {
		var s Sketch
		if err := s.UnmarshalBinary(data); err != nil {
			return
		}
		// Accepted inputs must re-encode, under the codec the input's magic
		// selected, to the same canonical bytes.
		var out []byte
		var err error
		if data[0] == wireMagicCompact {
			out, err = s.MarshalBinaryCompact()
		} else {
			out, err = s.MarshalBinary()
		}
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if string(out) != string(data) {
			t.Fatalf("accepted non-canonical encoding:\n in: %x\nout: %x", data, out)
		}
		// A decoded sketch must be usable.
		s.Record(1, 2)
		_ = s.Estimate(1)
	})
}

package vhll

import (
	"sync"
	"testing"
)

// Estimate used to stage the virtual estimator in a per-sketch scratch
// slice, racing under concurrent queries. It now uses caller-local
// buffers; this test fails under `go test -race` (and on any divergence)
// if that regresses.
func TestEstimateConcurrentReaders(t *testing.T) {
	s, err := New(Params{PhysicalRegisters: 4096, VirtualRegisters: 128, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50_000; i++ {
		s.Record(uint64(i%200), uint64(i))
	}
	want := make([]float64, 200)
	for f := range want {
		want[f] = s.Estimate(uint64(f))
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 20; rep++ {
				for f := 0; f < 200; f++ {
					if got := s.Estimate(uint64(f)); got != want[f] {
						t.Errorf("concurrent Estimate(%d) = %v, want %v", f, got, want[f])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

// EstimateUnion must be bit-identical to merging and estimating.
func TestEstimateUnionMatchesMerge(t *testing.T) {
	p := Params{PhysicalRegisters: 2048, VirtualRegisters: 128, Seed: 3}
	mk := func() *Sketch {
		s, err := New(p)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	base := mk()
	others := []*Sketch{mk(), mk()}
	for i := 0; i < 20_000; i++ {
		switch i % 3 {
		case 0:
			base.Record(uint64(i%50), uint64(i))
		default:
			others[i%3-1].Record(uint64(i%50), uint64(i))
		}
	}
	merged := base.Clone()
	for _, o := range others {
		if err := merged.MergeMax(o); err != nil {
			t.Fatal(err)
		}
	}
	for f := uint64(0); f < 50; f++ {
		if got, want := base.EstimateUnion(f, others), merged.Estimate(f); got != want {
			t.Fatalf("EstimateUnion(%d) = %v, merged Estimate = %v", f, got, want)
		}
		if got, want := base.EstimateUnion(f, nil), base.Estimate(f); got != want {
			t.Fatalf("EstimateUnion(%d, nil) = %v, Estimate = %v", f, got, want)
		}
	}
}

package vhll

import (
	"testing"

	"repro/internal/hll"
	"repro/internal/xhash"
)

// recordReference is the original record path, spelled directly over the
// xhash primitives. Slot/RecordSlot must stay bit-identical to it.
func recordReference(s *Sketch, f, e uint64) {
	p := s.Params()
	i := xhash.Index(e^p.Seed, seedVirtual, p.VirtualRegisters)
	reg := xhash.HashPair(f, uint64(i), p.Seed^seedRegister) % uint64(p.PhysicalRegisters)
	s.regs.Observe(int(reg), xhash.Geometric(xhash.HashPair(f, e, p.Seed), seedGeo, hll.MaxRegisterValue))
}

// TestSlotMatchesReference pins the precomputed Slot path to the direct
// xhash expressions, over non-power-of-two and power-of-two sizes.
func TestSlotMatchesReference(t *testing.T) {
	for _, p := range []Params{
		{PhysicalRegisters: 100, VirtualRegisters: 7, Seed: 0xdecaf},
		{PhysicalRegisters: 4096, VirtualRegisters: 128, Seed: 1},
		{PhysicalRegisters: 13107, VirtualRegisters: 128, Seed: 42},
	} {
		fast, err := New(p)
		if err != nil {
			t.Fatal(err)
		}
		ref, _ := New(p)
		for k := uint64(0); k < 3000; k++ {
			f := xhash.Mix64(k) % 50
			e := xhash.Mix64(k + 1)
			fast.Record(f, e)
			recordReference(ref, f, e)
		}
		if !fast.regs.Equal(ref.regs) {
			t.Fatalf("params %+v: Slot path diverged from reference", p)
		}
		for f := uint64(0); f < 50; f++ {
			if a, b := fast.Estimate(f), ref.Estimate(f); a != b {
				t.Fatalf("params %+v flow %d: estimate %v vs %v", p, f, a, b)
			}
		}
	}
}

// TestCompactEncodingRoundTrip covers both codecs across densities,
// including the decode-into-existing-sketch reuse path.
func TestCompactEncodingRoundTrip(t *testing.T) {
	p := Params{PhysicalRegisters: 2048, VirtualRegisters: 32, Seed: 5}
	scratch, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, packets := range []int{0, 1, 60, 5000} {
		s, _ := New(p)
		for k := 0; k < packets; k++ {
			s.Record(uint64(k%9), uint64(k))
		}
		legacy, err := s.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		compact, err := s.MarshalBinaryCompact()
		if err != nil {
			t.Fatal(err)
		}
		mut := s.Clone()
		mut.Record(77, 123456)
		for name, enc := range map[string][]byte{"legacy": legacy, "compact": compact} {
			if err := scratch.UnmarshalBinary(enc); err != nil {
				t.Fatalf("%s packets=%d: %v", name, packets, err)
			}
			if !scratch.regs.Equal(s.regs) || scratch.params != s.params {
				t.Fatalf("%s packets=%d: round-trip mismatch", name, packets)
			}
			scratch.Record(77, 123456)
			if !scratch.regs.Equal(mut.regs) {
				t.Fatalf("%s packets=%d: decoded sketch records differently", name, packets)
			}
		}
		if packets == 60 && len(compact) >= len(legacy)/2 {
			t.Fatalf("compact %d bytes vs legacy %d: expected >2x reduction at this density", len(compact), len(legacy))
		}
	}
}

package vhll

import (
	"math"
	"testing"
)

func testParams() Params {
	return Params{PhysicalRegisters: 1 << 16, VirtualRegisters: 128, Seed: 5}
}

func TestValidate(t *testing.T) {
	if err := testParams().Validate(); err != nil {
		t.Fatal(err)
	}
	bads := []Params{
		{PhysicalRegisters: 0, VirtualRegisters: 8},
		{PhysicalRegisters: 8, VirtualRegisters: 0},
		{PhysicalRegisters: 8, VirtualRegisters: 16},
	}
	for i, bad := range bads {
		if err := bad.Validate(); err == nil {
			t.Fatalf("case %d: expected validation error", i)
		}
	}
	if _, err := New(Params{}); err == nil {
		t.Fatal("New must validate")
	}
}

func TestPhysicalForMemory(t *testing.T) {
	// 2Mb at 5 bits/register.
	if got := PhysicalForMemory(1 << 21); got != (1<<21)/5 {
		t.Fatalf("PhysicalForMemory = %d", got)
	}
	if PhysicalForMemory(1) != 1 {
		t.Fatal("floor should be 1")
	}
}

func TestEstimateSingleFlow(t *testing.T) {
	s, err := New(testParams())
	if err != nil {
		t.Fatal(err)
	}
	const truth = 5000
	for e := 0; e < truth; e++ {
		s.Record(7, uint64(e))
	}
	got := s.Estimate(7)
	if rel := math.Abs(got-truth) / truth; rel > 0.3 {
		t.Fatalf("estimate %.0f for truth %d (rel %.3f)", got, truth, rel)
	}
}

func TestEstimateNoiseSubtraction(t *testing.T) {
	// Heavy background from other flows raises the shared array; the
	// noise term must keep a small flow's estimate in the right ballpark.
	s, err := New(Params{PhysicalRegisters: 1 << 14, VirtualRegisters: 128, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for f := uint64(100); f < 400; f++ {
		for e := 0; e < 200; e++ {
			s.Record(f, f*10_000+uint64(e))
		}
	}
	for e := 0; e < 500; e++ {
		s.Record(7, uint64(e))
	}
	got := s.Estimate(7)
	if got < 100 || got > 1800 {
		t.Fatalf("noisy estimate %.0f for truth 500 outside plausible band", got)
	}
}

func TestEstimateAbsentFlowNearZero(t *testing.T) {
	s, err := New(testParams())
	if err != nil {
		t.Fatal(err)
	}
	for f := uint64(0); f < 100; f++ {
		for e := 0; e < 100; e++ {
			s.Record(f, uint64(e))
		}
	}
	sum := 0.0
	for f := uint64(5000); f < 5100; f++ {
		sum += s.Estimate(f)
	}
	if mean := sum / 100; mean > 60 {
		t.Fatalf("mean absent-flow estimate %.1f, want near 0", mean)
	}
}

func TestMergeIsUnion(t *testing.T) {
	p := testParams()
	a, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	u, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 2000; e++ {
		a.Record(9, uint64(e))
		u.Record(9, uint64(e))
	}
	for e := 1000; e < 3000; e++ {
		b.Record(9, uint64(e))
		u.Record(9, uint64(e))
	}
	if err := a.MergeMax(b); err != nil {
		t.Fatal(err)
	}
	if got, want := a.Estimate(9), u.Estimate(9); got != want {
		t.Fatalf("merged estimate %.2f != union %.2f", got, want)
	}
	other, err := New(Params{PhysicalRegisters: 1 << 10, VirtualRegisters: 128, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.MergeMax(other); err == nil {
		t.Fatal("expected mismatch error")
	}
}

func TestCloneAndReset(t *testing.T) {
	s, err := New(testParams())
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 300; e++ {
		s.Record(1, uint64(e))
	}
	c := s.Clone()
	s.Reset()
	if s.Estimate(1) != 0 {
		t.Fatal("reset sketch should estimate 0")
	}
	if c.Estimate(1) < 100 {
		t.Fatal("clone affected by reset")
	}
}

func TestMemoryBits(t *testing.T) {
	s, err := New(Params{PhysicalRegisters: 1000, VirtualRegisters: 100, Seed: 0})
	if err != nil {
		t.Fatal(err)
	}
	if s.MemoryBits() != 5000 {
		t.Fatalf("MemoryBits = %d", s.MemoryBits())
	}
}

package vhll

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

var genCorpus = flag.Bool("gen-corpus", false, "rewrite the committed fuzz seed corpus in testdata/fuzz")

// TestGenerateFuzzCorpus rewrites the committed seed corpus when run with
// -gen-corpus, in the `go test fuzz v1` format the fuzzer reads from
// testdata/fuzz/<Target>, so `make fuzz-short` starts from both sketch
// codecs instead of rediscovering the wire magics.
func TestGenerateFuzzCorpus(t *testing.T) {
	if !*genCorpus {
		t.Skip("run with -gen-corpus to rewrite testdata/fuzz")
	}
	var seeds [][]byte
	for _, p := range []Params{
		{PhysicalRegisters: 64, VirtualRegisters: 16, Seed: 1},
		{PhysicalRegisters: 256, VirtualRegisters: 32, Seed: 11},
	} {
		s, err := New(p)
		if err != nil {
			t.Fatal(err)
		}
		for i := uint64(0); i < 100; i++ {
			s.Record(i%7, i)
		}
		fixed, err := s.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		compact, err := s.MarshalBinaryCompact()
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := New(p)
		if err != nil {
			t.Fatal(err)
		}
		empty, err := fresh.MarshalBinaryCompact()
		if err != nil {
			t.Fatal(err)
		}
		seeds = append(seeds, fixed, compact, empty, compact[:len(compact)/2])
	}
	writeSeedCorpus(t, "FuzzUnmarshalBinary", seeds)
}

// writeSeedCorpus writes one-[]byte-argument seed files for target.
func writeSeedCorpus(t *testing.T, target string, seeds [][]byte) {
	t.Helper()
	dir := filepath.Join("testdata", "fuzz", target)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, s := range seeds {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(s)))
		name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// Package vhll implements the virtual HyperLogLog estimator (Xiao et al.,
// SIGMETRICS 2015, the paper's reference [18]): per-flow spread estimation
// by *register sharing*. All flows share one physical array of HLL
// registers; each flow owns a virtual estimator of s registers scattered
// pseudo-randomly through the array, and the noise other flows leave in
// the shared registers is subtracted in expectation using the whole
// array's estimate.
//
// rSkt2 (the sketch the paper builds on) improves on vHLL by cancelling
// noise per flow with its two-row construction rather than subtracting a
// global average; this package exists as the comparison substrate (see the
// ablation-vhll experiment) and as an alternative epoch sketch for
// single-point deployments.
package vhll

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/hll"
	"repro/internal/xhash"
)

// Seed offsets for the sketch's hash functions.
const (
	seedVirtual  = 0x77aa
	seedRegister = 0x3c19
	seedGeo      = 0x9d05
)

// Precomputed inner seed mixes: Hash64(x, s) = Mix64(x ^ Mix64(s)) and the
// offsets above are constants, so the record path hoists Mix64(seed) here
// (bit-identical, one Mix64 per decision instead of two).
var (
	preVirtual = xhash.Mix64(seedVirtual)
	preGeo     = xhash.Mix64(seedGeo)
)

// DefaultVirtualRegisters is the per-flow virtual estimator size used by
// the original paper's evaluation.
const DefaultVirtualRegisters = 128

// Params configures a vHLL sketch.
type Params struct {
	// PhysicalRegisters is the size of the shared register array.
	PhysicalRegisters int
	// VirtualRegisters is the per-flow virtual estimator size (s).
	VirtualRegisters int
	// Seed is the hash seed.
	Seed uint64
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.PhysicalRegisters <= 0 || p.VirtualRegisters <= 0 {
		return fmt.Errorf("vhll: register counts must be positive: %+v", p)
	}
	if p.VirtualRegisters > p.PhysicalRegisters {
		return fmt.Errorf("vhll: virtual estimator (%d) larger than physical array (%d)",
			p.VirtualRegisters, p.PhysicalRegisters)
	}
	return nil
}

// PhysicalForMemory returns the physical register count fitting memBits
// bits at hll.RegisterBits per register.
func PhysicalForMemory(memBits int) int {
	m := memBits / hll.RegisterBits
	if m < 1 {
		m = 1
	}
	return m
}

// Sketch is a vHLL instance. Writes are not safe for concurrent use, but
// Estimate/EstimateUnion are read-only and safe to call concurrently with
// each other (each call uses caller-local buffers, not shared scratch).
type Sketch struct {
	params Params
	regs   hll.Regs
	// Derived per-packet constants, set by initDerived wherever params are
	// assigned: precomputed seed mixes and multiply-based moduli.
	preSeed    uint64 // Mix64(Seed), the G(f, e) inner hash
	preRegSeed uint64 // Mix64(Seed ^ seedRegister), the register-scatter hash
	vDiv, pDiv xhash.Divisor
}

// initDerived recomputes the record-path constants from s.params. Every
// assignment to s.params must be followed by a call to it.
func (s *Sketch) initDerived() {
	s.preSeed = xhash.Mix64(s.params.Seed)
	s.preRegSeed = xhash.Mix64(s.params.Seed ^ seedRegister)
	s.vDiv = xhash.NewDivisor(s.params.VirtualRegisters)
	s.pDiv = xhash.NewDivisor(s.params.PhysicalRegisters)
}

// New creates a zeroed sketch.
func New(p Params) (*Sketch, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	s := &Sketch{
		params: p,
		regs:   hll.NewRegs(p.PhysicalRegisters),
	}
	s.initDerived()
	return s, nil
}

// Params returns the configuration.
func (s *Sketch) Params() Params { return s.params }

// Record inserts packet <f, e>.
func (s *Sketch) Record(f, e uint64) {
	s.RecordSlot(s.Slot(f, e))
}

// Slot is a fully resolved per-packet recording decision: which shared
// register receives which geometric value. It is valid for any sketch
// sharing the parameters of the sketch that computed it.
type Slot struct {
	Reg int   // index into the shared physical register array
	Val uint8 // geometric register value, already clamped
}

// Slot computes the recording decision for packet <f, e> once, so callers
// holding several same-parameter sketches hash once and apply the slot to
// each. Bit-identical to the decisions Record has always made (the xhash
// calls with seed mixes hoisted and % replaced by Divisor.Mod).
func (s *Sketch) Slot(f, e uint64) Slot {
	p := &s.params
	i := s.vDiv.Mod(xhash.Mix64((e ^ p.Seed) ^ preVirtual))
	reg := s.pDiv.Mod(xhash.Mix64(xhash.Mix64(f^s.preRegSeed) ^ i))
	v := geoValue(xhash.Mix64(xhash.Mix64(xhash.Mix64(f^s.preSeed)^e) ^ preGeo))
	return Slot{Reg: int(reg), Val: v}
}

// RecordSlot applies a previously computed slot to the sketch. The slot
// must come from a sketch with identical parameters.
func (s *Sketch) RecordSlot(sl Slot) {
	if s.regs[sl.Reg] < sl.Val {
		s.regs[sl.Reg] = sl.Val
	}
}

// geoValue finishes xhash.Geometric from the already-mixed hash: leading
// zeros + 1, capped at the register maximum.
func geoValue(h uint64) uint8 {
	rho := uint8(bits.LeadingZeros64(h)) + 1
	if rho > hll.MaxRegisterValue {
		rho = hll.MaxRegisterValue
	}
	return rho
}

// estimatorScratchS is the largest virtual-estimator size whose query
// buffer fits on the caller's stack; the default s is 128.
const estimatorScratchS = 512

// Estimate returns the spread estimate for flow f: the virtual estimator's
// raw estimate minus the expected share of the whole array's cardinality
// (the register-sharing noise term). Read-only and safe for concurrent
// callers.
func (s *Sketch) Estimate(f uint64) float64 {
	return s.EstimateUnion(f, nil)
}

// EstimateUnion returns the spread estimate for flow f over the
// register-wise max of s and others, without mutating anything:
// bit-identical to MergeMax-ing every other sketch into s first and calling
// Estimate. All others must share s's parameters. Read-only and safe for
// concurrent callers.
func (s *Sketch) EstimateUnion(f uint64, others []*Sketch) float64 {
	p := &s.params

	var stack [estimatorScratchS]uint8
	var virt []uint8
	if p.VirtualRegisters <= estimatorScratchS {
		virt = stack[:p.VirtualRegisters]
	} else {
		virt = make([]uint8, p.VirtualRegisters)
	}
	// The register-scatter hash shares its flow half across all i; mix it
	// once outside the loop.
	hf := xhash.Mix64(f ^ s.preRegSeed)
	for i := 0; i < p.VirtualRegisters; i++ {
		reg := s.pDiv.Mod(xhash.Mix64(hf ^ uint64(i)))
		v := s.regs[reg]
		for _, o := range others {
			if w := o.regs[reg]; w > v {
				v = w
			}
		}
		virt[i] = v
	}
	sv := float64(p.VirtualRegisters)
	m := float64(p.PhysicalRegisters)
	// n_f ≈ s/(1 - s/m) * (raw(virtual)/s - raw(whole)/m), the vHLL
	// estimator rearranged; raw() is the plain HLL estimate.
	nv := hll.Estimate(virt)
	var nt float64
	if len(others) == 0 {
		nt = hll.Estimate(s.regs)
	} else {
		sets := make([][]uint8, len(others))
		for i, o := range others {
			sets[i] = o.regs
		}
		nt = hll.EstimateUnion(s.regs, sets)
	}
	est := sv / (1 - sv/m) * (nv/sv - nt/m)
	if math.IsNaN(est) || est < 0 {
		return 0
	}
	return est
}

// MergeMax folds o into s (union semantics across epochs/points).
func (s *Sketch) MergeMax(o *Sketch) error {
	if s.params != o.params {
		return fmt.Errorf("vhll: merge parameter mismatch: %+v vs %+v", s.params, o.params)
	}
	return s.regs.MergeMax(o.regs)
}

// Merge folds o into s under the spread design's merge algebra —
// register-wise max. It is the sketch-algebra name for MergeMax
// (core.Sketch requires one merge spelling across backends).
func (s *Sketch) Merge(o *Sketch) error { return s.MergeMax(o) }

// Reset zeroes the register array.
func (s *Sketch) Reset() {
	s.regs.Reset()
}

// Clone returns a deep copy.
func (s *Sketch) Clone() *Sketch {
	c, err := New(s.params)
	if err != nil { // parameters were validated at construction
		panic(err)
	}
	copy(c.regs, s.regs)
	return c
}

// MemoryBits returns the footprint under the paper's register model.
func (s *Sketch) MemoryBits() int {
	return s.regs.MemoryBits()
}

// Package vhll implements the virtual HyperLogLog estimator (Xiao et al.,
// SIGMETRICS 2015, the paper's reference [18]): per-flow spread estimation
// by *register sharing*. All flows share one physical array of HLL
// registers; each flow owns a virtual estimator of s registers scattered
// pseudo-randomly through the array, and the noise other flows leave in
// the shared registers is subtracted in expectation using the whole
// array's estimate.
//
// rSkt2 (the sketch the paper builds on) improves on vHLL by cancelling
// noise per flow with its two-row construction rather than subtracting a
// global average; this package exists as the comparison substrate (see the
// ablation-vhll experiment) and as an alternative epoch sketch for
// single-point deployments.
package vhll

import (
	"fmt"
	"math"

	"repro/internal/hll"
	"repro/internal/xhash"
)

// Seed offsets for the sketch's hash functions.
const (
	seedVirtual  = 0x77aa
	seedRegister = 0x3c19
	seedGeo      = 0x9d05
)

// DefaultVirtualRegisters is the per-flow virtual estimator size used by
// the original paper's evaluation.
const DefaultVirtualRegisters = 128

// Params configures a vHLL sketch.
type Params struct {
	// PhysicalRegisters is the size of the shared register array.
	PhysicalRegisters int
	// VirtualRegisters is the per-flow virtual estimator size (s).
	VirtualRegisters int
	// Seed is the hash seed.
	Seed uint64
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.PhysicalRegisters <= 0 || p.VirtualRegisters <= 0 {
		return fmt.Errorf("vhll: register counts must be positive: %+v", p)
	}
	if p.VirtualRegisters > p.PhysicalRegisters {
		return fmt.Errorf("vhll: virtual estimator (%d) larger than physical array (%d)",
			p.VirtualRegisters, p.PhysicalRegisters)
	}
	return nil
}

// PhysicalForMemory returns the physical register count fitting memBits
// bits at hll.RegisterBits per register.
func PhysicalForMemory(memBits int) int {
	m := memBits / hll.RegisterBits
	if m < 1 {
		m = 1
	}
	return m
}

// Sketch is a vHLL instance. Writes are not safe for concurrent use, but
// Estimate/EstimateUnion are read-only and safe to call concurrently with
// each other (each call uses caller-local buffers, not shared scratch).
type Sketch struct {
	params Params
	regs   hll.Regs
}

// New creates a zeroed sketch.
func New(p Params) (*Sketch, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Sketch{
		params: p,
		regs:   hll.NewRegs(p.PhysicalRegisters),
	}, nil
}

// Params returns the configuration.
func (s *Sketch) Params() Params { return s.params }

// Record inserts packet <f, e>.
func (s *Sketch) Record(f, e uint64) {
	p := &s.params
	i := xhash.Index(e^p.Seed, seedVirtual, p.VirtualRegisters)
	reg := xhash.HashPair(f, uint64(i), p.Seed^seedRegister) % uint64(p.PhysicalRegisters)
	s.regs.Observe(int(reg), xhash.Geometric(xhash.HashPair(f, e, p.Seed), seedGeo, hll.MaxRegisterValue))
}

// estimatorScratchS is the largest virtual-estimator size whose query
// buffer fits on the caller's stack; the default s is 128.
const estimatorScratchS = 512

// Estimate returns the spread estimate for flow f: the virtual estimator's
// raw estimate minus the expected share of the whole array's cardinality
// (the register-sharing noise term). Read-only and safe for concurrent
// callers.
func (s *Sketch) Estimate(f uint64) float64 {
	return s.EstimateUnion(f, nil)
}

// EstimateUnion returns the spread estimate for flow f over the
// register-wise max of s and others, without mutating anything:
// bit-identical to MergeMax-ing every other sketch into s first and calling
// Estimate. All others must share s's parameters. Read-only and safe for
// concurrent callers.
func (s *Sketch) EstimateUnion(f uint64, others []*Sketch) float64 {
	p := &s.params

	var stack [estimatorScratchS]uint8
	var virt []uint8
	if p.VirtualRegisters <= estimatorScratchS {
		virt = stack[:p.VirtualRegisters]
	} else {
		virt = make([]uint8, p.VirtualRegisters)
	}
	for i := 0; i < p.VirtualRegisters; i++ {
		reg := xhash.HashPair(f, uint64(i), p.Seed^seedRegister) % uint64(p.PhysicalRegisters)
		v := s.regs[reg]
		for _, o := range others {
			if w := o.regs[reg]; w > v {
				v = w
			}
		}
		virt[i] = v
	}
	sv := float64(p.VirtualRegisters)
	m := float64(p.PhysicalRegisters)
	// n_f ≈ s/(1 - s/m) * (raw(virtual)/s - raw(whole)/m), the vHLL
	// estimator rearranged; raw() is the plain HLL estimate.
	nv := hll.Estimate(virt)
	var nt float64
	if len(others) == 0 {
		nt = hll.Estimate(s.regs)
	} else {
		sets := make([][]uint8, len(others))
		for i, o := range others {
			sets[i] = o.regs
		}
		nt = hll.EstimateUnion(s.regs, sets)
	}
	est := sv / (1 - sv/m) * (nv/sv - nt/m)
	if math.IsNaN(est) || est < 0 {
		return 0
	}
	return est
}

// MergeMax folds o into s (union semantics across epochs/points).
func (s *Sketch) MergeMax(o *Sketch) error {
	if s.params != o.params {
		return fmt.Errorf("vhll: merge parameter mismatch: %+v vs %+v", s.params, o.params)
	}
	return s.regs.MergeMax(o.regs)
}

// Merge folds o into s under the spread design's merge algebra —
// register-wise max. It is the sketch-algebra name for MergeMax
// (core.Sketch requires one merge spelling across backends).
func (s *Sketch) Merge(o *Sketch) error { return s.MergeMax(o) }

// Reset zeroes the register array.
func (s *Sketch) Reset() {
	s.regs.Reset()
}

// Clone returns a deep copy.
func (s *Sketch) Clone() *Sketch {
	c, err := New(s.params)
	if err != nil { // parameters were validated at construction
		panic(err)
	}
	copy(c.regs, s.regs)
	return c
}

// MemoryBits returns the footprint under the paper's register model.
func (s *Sketch) MemoryBits() int {
	return s.regs.MemoryBits()
}

package vhll

import (
	"encoding/binary"
	"fmt"

	"repro/internal/hll"
)

// Wire magics for the two binary encodings of a vHLL sketch. Deliberately
// distinct from the rskt magics (0xA7/0xA8): a transport or checkpoint
// restored under the wrong -sketch backend fails loudly at decode instead
// of misreading registers. The compact form run-length encodes the shared
// register array and is negotiated per connection; UnmarshalBinary accepts
// both.
const (
	wireMagic        = 0xB3
	wireMagicCompact = 0xB4
)

// appendHeader writes the shared encoding header: magic, physical and
// virtual register counts, seed.
func (s *Sketch) appendHeader(out []byte, magic byte) []byte {
	p := s.params
	out = append(out, magic)
	out = binary.LittleEndian.AppendUint32(out, uint32(p.PhysicalRegisters))
	out = binary.LittleEndian.AppendUint32(out, uint32(p.VirtualRegisters))
	out = binary.LittleEndian.AppendUint64(out, p.Seed)
	return out
}

// MarshalBinary encodes the sketch with 5-bit register packing (the
// paper's memory model), little-endian: magic, physical and virtual
// register counts, seed, then a word count and the packed words of the
// shared register array.
func (s *Sketch) MarshalBinary() ([]byte, error) {
	words := make([]uint64, hll.PackedWords(len(s.regs)))
	hll.PackInto(words, s.regs)
	out := make([]byte, 0, 1+4+4+8+4+len(words)*8)
	out = s.appendHeader(out, wireMagic)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(words)))
	for _, w := range words {
		out = binary.LittleEndian.AppendUint64(out, w)
	}
	return out, nil
}

// MarshalBinaryCompact encodes the sketch in the compact (run-length)
// form: the same header under wireMagicCompact, then the register array as
// an hll compact register array.
func (s *Sketch) MarshalBinaryCompact() ([]byte, error) {
	out := make([]byte, 0, 64)
	out = s.appendHeader(out, wireMagicCompact)
	return hll.AppendCompact(out, s.regs), nil
}

// UnmarshalBinary decodes a sketch previously encoded by MarshalBinary or
// MarshalBinaryCompact, dispatching on the magic byte. When s already has
// the decoded size its register array is reused, so a pooled scratch
// sketch decodes epoch after epoch without allocating; on error the
// register contents are unspecified but the sketch stays structurally
// valid.
func (s *Sketch) UnmarshalBinary(data []byte) error {
	if len(data) < 1+4+4+8 {
		return fmt.Errorf("vhll: truncated sketch encoding")
	}
	magic := data[0]
	if magic != wireMagic && magic != wireMagicCompact {
		return fmt.Errorf("vhll: bad magic byte %#x", data[0])
	}
	off := 1
	m := int(binary.LittleEndian.Uint32(data[off:]))
	off += 4
	v := int(binary.LittleEndian.Uint32(data[off:]))
	off += 4
	seed := binary.LittleEndian.Uint64(data[off:])
	off += 8
	p := Params{PhysicalRegisters: m, VirtualRegisters: v, Seed: seed}
	if err := p.Validate(); err != nil {
		return fmt.Errorf("vhll: decode: %w", err)
	}
	// Bound dimensions before trusting them for allocation (see the
	// decoder fuzz tests).
	const maxRegisters = 1 << 28
	if m > maxRegisters {
		return fmt.Errorf("vhll: decode: implausible size %d", m)
	}
	regs := s.regs
	if len(regs) != m {
		regs = hll.NewRegs(m)
	}
	if magic == wireMagic {
		if len(data[off:]) < 4 {
			return fmt.Errorf("vhll: truncated register payload")
		}
		count := int(binary.LittleEndian.Uint32(data[off:]))
		off += 4
		want := hll.PackedWords(m)
		if count != want {
			return fmt.Errorf("vhll: %d words for %d registers, want %d", count, m, want)
		}
		if len(data[off:]) < count*8 {
			return fmt.Errorf("vhll: truncated register payload")
		}
		words := make([]uint64, count)
		for i := range words {
			words[i] = binary.LittleEndian.Uint64(data[off:])
			off += 8
		}
		if err := hll.UnpackInto(regs, words); err != nil {
			return fmt.Errorf("vhll: decode registers: %w", err)
		}
	} else {
		consumed, err := hll.DecodeCompact(regs, data[off:])
		if err != nil {
			return fmt.Errorf("vhll: decode registers: %w", err)
		}
		off += consumed
	}
	if off != len(data) {
		return fmt.Errorf("vhll: %d trailing bytes", len(data)-off)
	}
	s.params = p
	s.regs = regs
	s.initDerived()
	return nil
}

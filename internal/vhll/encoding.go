package vhll

import (
	"encoding/binary"
	"fmt"

	"repro/internal/hll"
)

// wireMagic tags the binary encoding of a vHLL sketch. Deliberately
// distinct from the rskt magic (0xA7): a transport or checkpoint restored
// under the wrong -sketch backend fails loudly at decode instead of
// misreading registers.
const wireMagic = 0xB3

// MarshalBinary encodes the sketch with 5-bit register packing (the
// paper's memory model), little-endian: magic, physical and virtual
// register counts, seed, then a word count and the packed words of the
// shared register array.
func (s *Sketch) MarshalBinary() ([]byte, error) {
	p := s.params
	words := hll.Pack(s.regs).Words()
	out := make([]byte, 0, 1+4+4+8+4+len(words)*8)
	out = append(out, wireMagic)
	out = binary.LittleEndian.AppendUint32(out, uint32(p.PhysicalRegisters))
	out = binary.LittleEndian.AppendUint32(out, uint32(p.VirtualRegisters))
	out = binary.LittleEndian.AppendUint64(out, p.Seed)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(words)))
	for _, w := range words {
		out = binary.LittleEndian.AppendUint64(out, w)
	}
	return out, nil
}

// UnmarshalBinary decodes a sketch previously encoded by MarshalBinary.
func (s *Sketch) UnmarshalBinary(data []byte) error {
	if len(data) < 1+4+4+8+4 {
		return fmt.Errorf("vhll: truncated sketch encoding")
	}
	if data[0] != wireMagic {
		return fmt.Errorf("vhll: bad magic byte %#x", data[0])
	}
	off := 1
	m := int(binary.LittleEndian.Uint32(data[off:]))
	off += 4
	v := int(binary.LittleEndian.Uint32(data[off:]))
	off += 4
	seed := binary.LittleEndian.Uint64(data[off:])
	off += 8
	p := Params{PhysicalRegisters: m, VirtualRegisters: v, Seed: seed}
	if err := p.Validate(); err != nil {
		return fmt.Errorf("vhll: decode: %w", err)
	}
	// Bound dimensions before trusting them for allocation (see the
	// decoder fuzz tests).
	const maxRegisters = 1 << 28
	if m > maxRegisters {
		return fmt.Errorf("vhll: decode: implausible size %d", m)
	}
	count := int(binary.LittleEndian.Uint32(data[off:]))
	off += 4
	if count < 0 || len(data[off:]) < count*8 {
		return fmt.Errorf("vhll: truncated register payload")
	}
	words := make([]uint64, count)
	for i := range words {
		words[i] = binary.LittleEndian.Uint64(data[off:])
		off += 8
	}
	packed, err := hll.FromWords(m, words)
	if err != nil {
		return fmt.Errorf("vhll: decode registers: %w", err)
	}
	if off != len(data) {
		return fmt.Errorf("vhll: %d trailing bytes", len(data)-off)
	}
	s.params = p
	s.regs = packed.Unpack()
	return nil
}

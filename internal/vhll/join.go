package vhll

import (
	"fmt"

	"repro/internal/hll"
)

// The methods below make vHLL usable as the epoch sketch of the paper's
// three-sketch design (core.SpreadSketch): the shared register array plays
// the role of the sketch's columns, and expand-and-compress works exactly
// as for rSkt2 because a flow's cell indexes are computed modulo the array
// size — with power-of-two size ratios, index mod small = (index mod big)
// mod small, so column replication preserves every flow's view.

// Width returns the physical register count (the size that varies under
// device diversity).
func (s *Sketch) Width() int { return s.params.PhysicalRegisters }

// Compatible reports whether two sketches can be joined after width
// alignment: same per-flow virtual estimator size and same hash seed.
func (s *Sketch) Compatible(o *Sketch) bool {
	return o != nil &&
		s.params.VirtualRegisters == o.params.VirtualRegisters &&
		s.params.Seed == o.params.Seed
}

// CopyFrom overwrites s's registers with o's.
func (s *Sketch) CopyFrom(o *Sketch) error {
	if s.params != o.params {
		return fmt.Errorf("vhll: copy parameter mismatch: %+v vs %+v", s.params, o.params)
	}
	copy(s.regs, o.regs)
	return nil
}

// ExpandTo replicates the register array to mBig physical registers
// (expanded[i] = s[i mod m]); mBig must be a multiple of the current size.
func (s *Sketch) ExpandTo(mBig int) (*Sketch, error) {
	m := s.params.PhysicalRegisters
	if mBig%m != 0 {
		return nil, fmt.Errorf("vhll: expand target %d not a multiple of size %d", mBig, m)
	}
	q := s.params
	q.PhysicalRegisters = mBig
	out, err := New(q)
	if err != nil {
		return nil, err
	}
	for i := 0; i < mBig; i++ {
		out.regs[i] = s.regs[i%m]
	}
	return out, nil
}

// CompressTo folds the register array down to mSmall physical registers by
// register-wise max over the folds; mSmall must divide the current size.
func (s *Sketch) CompressTo(mSmall int) (*Sketch, error) {
	m := s.params.PhysicalRegisters
	if m%mSmall != 0 {
		return nil, fmt.Errorf("vhll: compress target %d does not divide size %d", mSmall, m)
	}
	q := s.params
	q.PhysicalRegisters = mSmall
	out, err := New(q)
	if err != nil {
		return nil, err
	}
	for base := 0; base < m; base += mSmall {
		hll.MergeMaxBytes(out.regs, s.regs[base:base+mSmall])
	}
	return out, nil
}

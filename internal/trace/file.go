package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// File format: a 16-byte header ("TQTRACE1" magic + uint32 point count +
// 4 reserved bytes) followed by fixed 28-byte little-endian records
// (ts int64, point uint32, flow uint64, elem uint64).

var fileMagic = [8]byte{'T', 'Q', 'T', 'R', 'A', 'C', 'E', '1'}

const recordSize = 8 + 4 + 8 + 8

// Writer streams packets to a trace file.
type Writer struct {
	w   *bufio.Writer
	buf [recordSize]byte
}

// NewWriter writes the header for a trace covering the given number of
// measurement points and returns a record writer.
func NewWriter(w io.Writer, points int) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(fileMagic[:]); err != nil {
		return nil, fmt.Errorf("trace: write magic: %w", err)
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(points))
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: write header: %w", err)
	}
	return &Writer{w: bw}, nil
}

// Write appends one packet record.
func (tw *Writer) Write(p Packet) error {
	b := tw.buf[:]
	binary.LittleEndian.PutUint64(b[0:8], uint64(p.TS))
	binary.LittleEndian.PutUint32(b[8:12], uint32(p.Point))
	binary.LittleEndian.PutUint64(b[12:20], p.Flow)
	binary.LittleEndian.PutUint64(b[20:28], p.Elem)
	if _, err := tw.w.Write(b); err != nil {
		return fmt.Errorf("trace: write record: %w", err)
	}
	return nil
}

// Flush drains buffered records to the underlying writer.
func (tw *Writer) Flush() error {
	return tw.w.Flush()
}

// Reader streams packets from a trace file.
type Reader struct {
	r      *bufio.Reader
	points int
	buf    [recordSize]byte
}

// NewReader validates the header and returns a record reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: read magic: %w", err)
	}
	if magic != fileMagic {
		return nil, errors.New("trace: not a TQTRACE1 file")
	}
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: read header: %w", err)
	}
	points := int(binary.LittleEndian.Uint32(hdr[:4]))
	if points <= 0 {
		return nil, fmt.Errorf("trace: invalid point count %d", points)
	}
	return &Reader{r: br, points: points}, nil
}

// Points returns the number of measurement points declared in the header.
func (tr *Reader) Points() int { return tr.points }

// Read returns the next packet, or io.EOF at end of trace.
func (tr *Reader) Read() (Packet, error) {
	b := tr.buf[:]
	if _, err := io.ReadFull(tr.r, b); err != nil {
		if errors.Is(err, io.EOF) {
			return Packet{}, io.EOF
		}
		return Packet{}, fmt.Errorf("trace: read record: %w", err)
	}
	return Packet{
		TS:    int64(binary.LittleEndian.Uint64(b[0:8])),
		Point: int(binary.LittleEndian.Uint32(b[8:12])),
		Flow:  binary.LittleEndian.Uint64(b[12:20]),
		Elem:  binary.LittleEndian.Uint64(b[20:28]),
	}, nil
}

package trace

import (
	"bytes"
	"errors"
	"io"
	"math"
	"testing"
	"testing/quick"
	"time"
)

func smallConfig() Config {
	return Config{
		Packets:    50_000,
		Flows:      2_000,
		Points:     3,
		Duration:   time.Minute,
		ZipfS:      1.2,
		SpreadCap:  5_000,
		SpreadSkew: 0.9,
		Seed:       7,
	}
}

func TestValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
	bads := []Config{
		{},
		{Packets: 1, Flows: 1, Points: 1, Duration: time.Second, ZipfS: 1.0, SpreadCap: 1},
		{Packets: 1, Flows: 1, Points: 1, Duration: 0, ZipfS: 1.2, SpreadCap: 1},
		{Packets: 1, Flows: 1, Points: 1, Duration: time.Second, ZipfS: 1.2, SpreadCap: 0},
	}
	for i, bad := range bads {
		if err := bad.Validate(); err == nil {
			t.Fatalf("case %d: expected validation error", i)
		}
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	g1, err := NewGenerator(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	g2, err := NewGenerator(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		a, okA := g1.Next()
		b, okB := g2.Next()
		if okA != okB || a != b {
			t.Fatalf("packet %d differs: %+v vs %+v", i, a, b)
		}
	}
}

func TestGeneratorCountAndOrder(t *testing.T) {
	cfg := smallConfig()
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var last int64 = -1
	n := 0
	for {
		p, ok := g.Next()
		if !ok {
			break
		}
		if p.TS < last {
			t.Fatalf("timestamps not monotone at packet %d", n)
		}
		if p.TS < 0 || p.TS >= cfg.Duration.Nanoseconds() {
			t.Fatalf("timestamp %d out of range", p.TS)
		}
		if p.Point < 0 || p.Point >= cfg.Points {
			t.Fatalf("point %d out of range", p.Point)
		}
		last = p.TS
		n++
	}
	if n != cfg.Packets {
		t.Fatalf("generated %d packets, want %d", n, cfg.Packets)
	}
}

func TestTraceIsHeavyTailed(t *testing.T) {
	st, err := Collect(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if st.Packets != 50_000 {
		t.Fatalf("stats packets = %d", st.Packets)
	}
	if st.DistinctFlows < 200 {
		t.Fatalf("too few distinct flows: %d", st.DistinctFlows)
	}
	// Zipf with s=1.2: the top flow should dominate.
	if st.TopFlowShare < 0.05 {
		t.Fatalf("top flow share %.4f, expected heavy tail", st.TopFlowShare)
	}
	// Points should share the load roughly evenly (uniform split).
	for i, c := range st.PerPoint {
		want := float64(st.Packets) / 3
		if math.Abs(float64(c)-want) > 0.05*want {
			t.Fatalf("point %d got %d packets, want ~%.0f", i, c, want)
		}
	}
}

func TestScrambleBijective(t *testing.T) {
	err := quick.Check(func(x uint64) bool {
		return Rank(scramble(x)) == x
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestSpreadDecaysWithRank(t *testing.T) {
	g, err := NewGenerator(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if g.spreadOf(0) < g.spreadOf(100) {
		t.Fatal("spread should decay with rank")
	}
	if g.spreadOf(1<<40) != 1 {
		t.Fatal("spread floor should be 1")
	}
}

func TestEachVisitsAll(t *testing.T) {
	n := 0
	if err := Each(smallConfig(), func(Packet) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 50_000 {
		t.Fatalf("Each visited %d packets", n)
	}
}

func TestEachPropagatesError(t *testing.T) {
	sentinel := errors.New("stop")
	err := Each(smallConfig(), func(Packet) error { return sentinel })
	if !errors.Is(err, sentinel) {
		t.Fatalf("Each returned %v, want sentinel", err)
	}
}

func TestFileRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 3)
	if err != nil {
		t.Fatal(err)
	}
	var want []Packet
	g, err := NewGenerator(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		p, _ := g.Next()
		want = append(want, p)
		if err := w.Write(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if r.Points() != 3 {
		t.Fatalf("header points = %d", r.Points())
	}
	for i, wp := range want {
		got, err := r.Read()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got != wp {
			t.Fatalf("record %d: got %+v want %+v", i, got, wp)
		}
	}
	if _, err := r.Read(); !errors.Is(err, io.EOF) {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("not a trace file at all"))); err == nil {
		t.Fatal("expected magic error")
	}
	if _, err := NewReader(bytes.NewReader(nil)); err == nil {
		t.Fatal("expected error on empty input")
	}
}

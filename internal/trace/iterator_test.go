package trace

import (
	"testing"
	"time"
)

func TestMergeOrdersByTimestamp(t *testing.T) {
	a, err := NewBurst(BurstConfig{
		Flow: 1, Start: 0, End: 1000, Packets: 10, Points: 2, FreshElements: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBurst(BurstConfig{
		Flow: 2, Start: 50, End: 500, Packets: 10, Points: 2, FreshElements: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := Merge(a, b)
	var last int64 = -1
	n := 0
	for {
		p, ok := m.Next()
		if !ok {
			break
		}
		if p.TS < last {
			t.Fatalf("merge out of order at packet %d: %d after %d", n, p.TS, last)
		}
		last = p.TS
		n++
	}
	if n != 20 {
		t.Fatalf("merged %d packets, want 20", n)
	}
}

func TestMergeWithGenerator(t *testing.T) {
	gen, err := NewGenerator(Config{
		Packets: 1000, Flows: 50, Points: 3, Duration: time.Second,
		ZipfS: 1.2, SpreadCap: 100, SpreadSkew: 0.5, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	attack, err := NewBurst(BurstConfig{
		Flow: 999, Start: int64(200 * time.Millisecond), End: int64(800 * time.Millisecond),
		Packets: 300, Points: 3, FreshElements: true, ElemBase: 1 << 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := Merge(gen, attack)
	var last int64 = -1
	total, attackPkts := 0, 0
	for {
		p, ok := m.Next()
		if !ok {
			break
		}
		if p.TS < last {
			t.Fatal("merge out of order")
		}
		last = p.TS
		total++
		if p.Flow == 999 {
			attackPkts++
			if p.TS < int64(200*time.Millisecond) || p.TS >= int64(800*time.Millisecond) {
				t.Fatalf("attack packet outside burst window: ts=%d", p.TS)
			}
		}
	}
	if total != 1300 || attackPkts != 300 {
		t.Fatalf("total=%d attack=%d, want 1300/300", total, attackPkts)
	}
}

func TestBurstFreshElementsDistinct(t *testing.T) {
	b, err := NewBurst(BurstConfig{
		Flow: 1, Start: 0, End: 100, Packets: 50, Points: 2, FreshElements: true, ElemBase: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[uint64]bool)
	for {
		p, ok := b.Next()
		if !ok {
			break
		}
		if seen[p.Elem] {
			t.Fatalf("fresh-element burst repeated element %d", p.Elem)
		}
		seen[p.Elem] = true
	}
	if len(seen) != 50 {
		t.Fatalf("distinct elements = %d, want 50", len(seen))
	}
}

func TestBurstElementPoolCycles(t *testing.T) {
	b, err := NewBurst(BurstConfig{
		Flow: 1, Start: 0, End: 100, Packets: 50, Points: 2, ElementPool: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[uint64]bool)
	for {
		p, ok := b.Next()
		if !ok {
			break
		}
		seen[p.Elem] = true
	}
	if len(seen) != 5 {
		t.Fatalf("distinct elements = %d, want 5", len(seen))
	}
}

func TestBurstValidation(t *testing.T) {
	bads := []BurstConfig{
		{Flow: 1, Start: 0, End: 10, Packets: 0, Points: 1, FreshElements: true},
		{Flow: 1, Start: 10, End: 10, Packets: 5, Points: 1, FreshElements: true},
		{Flow: 1, Start: 0, End: 10, Packets: 5, Points: 0, FreshElements: true},
		{Flow: 1, Start: 0, End: 10, Packets: 5, Points: 1}, // no pool, no fresh
	}
	for i, bad := range bads {
		if _, err := NewBurst(bad); err == nil {
			t.Fatalf("case %d: expected validation error", i)
		}
	}
}

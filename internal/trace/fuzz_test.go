package trace

import (
	"bytes"
	"io"
	"testing"
)

// FuzzReader checks the trace-file reader never panics on arbitrary input.
func FuzzReader(f *testing.F) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 2)
	if err != nil {
		f.Fatal(err)
	}
	_ = w.Write(Packet{TS: 1, Point: 0, Flow: 2, Elem: 3})
	_ = w.Flush()
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("TQTRACE1"))
	f.Add([]byte("TQTRACE1\x00\x00\x00\x00\x00\x00\x00\x00"))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := 0; i < 1000; i++ {
			if _, err := r.Read(); err != nil {
				if err != io.EOF && err == nil {
					t.Fatal("impossible")
				}
				return
			}
		}
	})
}

package trace

import (
	"fmt"

	"repro/internal/window"
)

// Iterator is a stream of packets in timestamp order. Generator implements
// it; Merge and Burst compose richer workloads (e.g. injecting an attack
// into background traffic for detection-latency experiments).
type Iterator interface {
	Next() (Packet, bool)
}

var _ Iterator = (*Generator)(nil)

// merged yields two iterators' packets in timestamp order.
type merged struct {
	a, b         Iterator
	pa, pb       Packet
	haveA, haveB bool
}

// Merge returns an iterator over both inputs' packets, ordered by
// timestamp (ties favor the first input).
func Merge(a, b Iterator) Iterator {
	m := &merged{a: a, b: b}
	m.pa, m.haveA = a.Next()
	m.pb, m.haveB = b.Next()
	return m
}

// Next implements Iterator.
func (m *merged) Next() (Packet, bool) {
	switch {
	case !m.haveA && !m.haveB:
		return Packet{}, false
	case m.haveA && (!m.haveB || m.pa.TS <= m.pb.TS):
		p := m.pa
		m.pa, m.haveA = m.a.Next()
		return p, true
	default:
		p := m.pb
		m.pb, m.haveB = m.b.Next()
		return p, true
	}
}

// BurstConfig describes a single-flow traffic burst: an attack (or flash
// crowd) that starts and stops at given virtual times and scatters packets
// over all measurement points.
type BurstConfig struct {
	// Flow is the burst's flow label (e.g. the DDoS victim address).
	Flow uint64
	// Start and End bound the burst in virtual time.
	Start, End window.Time
	// Packets is the total burst packet count, spaced evenly in
	// [Start, End).
	Packets int
	// Points is the number of measurement points to scatter over.
	Points int
	// FreshElements makes every packet carry a new distinct element
	// (spoofed sources); otherwise elements cycle through ElementPool.
	FreshElements bool
	// ElementPool is the distinct element count when FreshElements is
	// false.
	ElementPool int
	// ElemBase offsets element identifiers so bursts don't collide with
	// background traffic.
	ElemBase uint64
	// Seed scatters packets over points.
	Seed uint64
}

// Validate reports whether the configuration is usable.
func (c BurstConfig) Validate() error {
	if c.Packets <= 0 || c.Points <= 0 {
		return fmt.Errorf("trace: burst counts must be positive: %+v", c)
	}
	if c.End <= c.Start {
		return fmt.Errorf("trace: burst end %d not after start %d", c.End, c.Start)
	}
	if !c.FreshElements && c.ElementPool <= 0 {
		return fmt.Errorf("trace: burst needs FreshElements or a positive ElementPool")
	}
	return nil
}

// burst implements Iterator for BurstConfig.
type burst struct {
	cfg  BurstConfig
	i    int
	step float64
}

// NewBurst creates a burst iterator.
func NewBurst(cfg BurstConfig) (Iterator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &burst{
		cfg:  cfg,
		step: float64(cfg.End-cfg.Start) / float64(cfg.Packets),
	}, nil
}

// Next implements Iterator.
func (b *burst) Next() (Packet, bool) {
	if b.i >= b.cfg.Packets {
		return Packet{}, false
	}
	elem := uint64(b.i)
	if !b.cfg.FreshElements {
		elem = uint64(b.i % b.cfg.ElementPool)
	}
	p := Packet{
		TS:    b.cfg.Start + window.Time(float64(b.i)*b.step),
		Point: int(scramble(uint64(b.i)^b.cfg.Seed) % uint64(b.cfg.Points)),
		Flow:  b.cfg.Flow,
		Elem:  b.cfg.ElemBase + elem,
	}
	b.i++
	return p, true
}

// Package trace generates and replays synthetic packet traces that stand
// in for the CAIDA 2018 capture used by the paper (which is not
// redistributable).
//
// The paper's evaluation properties depend on the *shape* of the traffic,
// not on the actual addresses: flow sizes follow a heavy-tailed (Zipf)
// distribution, flow spreads are correlated with sizes, and each packet is
// assigned uniformly at random to one of the measurement points (exactly
// how the paper splits the CAIDA trace into three streams). The generator
// reproduces those properties deterministically from a seed, at a
// laptop-scale packet count; experiments scale sketch memory by the same
// factor so per-flow load matches the paper's regime.
package trace

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/window"
)

// Packet is one abstracted packet <f, e> arriving at a measurement point.
type Packet struct {
	// TS is the virtual arrival time (nanoseconds from trace start).
	TS window.Time
	// Point is the measurement point the packet arrives at.
	Point int
	// Flow is the flow label (e.g. destination address).
	Flow uint64
	// Elem is the element identifier (e.g. source address).
	Elem uint64
}

// Config parameterizes a synthetic trace.
type Config struct {
	// Packets is the total packet count.
	Packets int
	// Flows is the number of distinct flow labels.
	Flows int
	// Points is the number of measurement points packets are spread over.
	Points int
	// Duration is the trace length in virtual time.
	Duration time.Duration
	// ZipfS is the flow-popularity skew (> 1). Packet counts per flow
	// follow a Zipf distribution with this exponent.
	ZipfS float64
	// SpreadCap is the element-universe size of the most popular flow;
	// flow at popularity rank r draws elements uniformly from a universe
	// of about SpreadCap/(r+1)^SpreadSkew distinct values.
	SpreadCap int
	// SpreadSkew is the decay of spread with popularity rank.
	SpreadSkew float64
	// Seed makes the trace reproducible.
	Seed int64
}

// Default returns the configuration used by the experiment harness: a
// ~100x scale-down of the paper's 30-minute CAIDA slice.
func Default() Config {
	return Config{
		Packets:    2_000_000,
		Flows:      120_000,
		Points:     3,
		Duration:   30 * time.Minute,
		ZipfS:      1.2,
		SpreadCap:  20_000,
		SpreadSkew: 0.9,
		Seed:       1,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Packets <= 0 || c.Flows <= 0 || c.Points <= 0 {
		return fmt.Errorf("trace: counts must be positive: %+v", c)
	}
	if c.Duration <= 0 {
		return fmt.Errorf("trace: duration must be positive")
	}
	if c.ZipfS <= 1 {
		return fmt.Errorf("trace: ZipfS must be > 1, got %v", c.ZipfS)
	}
	if c.SpreadCap < 1 || c.SpreadSkew < 0 {
		return fmt.Errorf("trace: invalid spread parameters")
	}
	return nil
}

// Generator produces the packets of a trace in timestamp order. It is a
// streaming iterator: traces never need to fit in memory.
type Generator struct {
	cfg  Config
	rng  *rand.Rand
	zipf *rand.Zipf
	i    int
	step float64
}

// NewGenerator creates a generator for the given configuration.
func NewGenerator(cfg Config) (*Generator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	return &Generator{
		cfg:  cfg,
		rng:  rng,
		zipf: rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Flows-1)),
		step: float64(cfg.Duration.Nanoseconds()) / float64(cfg.Packets),
	}, nil
}

// Config returns the generator's configuration.
func (g *Generator) Config() Config { return g.cfg }

// spreadOf returns the element-universe size of the flow at popularity
// rank r.
func (g *Generator) spreadOf(rank uint64) uint64 {
	u := float64(g.cfg.SpreadCap) / math.Pow(float64(rank+1), g.cfg.SpreadSkew)
	if u < 1 {
		return 1
	}
	return uint64(u)
}

// Next returns the next packet. ok is false once the trace is exhausted.
func (g *Generator) Next() (p Packet, ok bool) {
	if g.i >= g.cfg.Packets {
		return Packet{}, false
	}
	rank := g.zipf.Uint64()
	universe := g.spreadOf(rank)
	p = Packet{
		TS:    window.Time(float64(g.i) * g.step),
		Point: g.rng.Intn(g.cfg.Points),
		// Flow labels are scrambled ranks so hash-based sketches see no
		// accidental structure; the scramble is a fixed bijection.
		Flow: scramble(rank),
		Elem: g.rng.Uint64() % universe,
	}
	g.i++
	return p, true
}

// scramble is a cheap bijective mixer on 64-bit values (xorshift-multiply,
// invertible), mapping popularity ranks to flow labels.
func scramble(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x
}

// Rank recovers the popularity rank of a scrambled flow label; the inverse
// of scramble. Used by tests and by ground-truth tooling.
func Rank(flow uint64) uint64 {
	flow ^= flow >> 33
	flow *= 0x4f74430c22a54005 // modular inverse of 0xff51afd7ed558ccd
	flow ^= flow >> 33
	return flow
}

// Each runs fn over every packet of a fresh generator pass.
func Each(cfg Config, fn func(Packet) error) error {
	g, err := NewGenerator(cfg)
	if err != nil {
		return err
	}
	for {
		p, ok := g.Next()
		if !ok {
			return nil
		}
		if err := fn(p); err != nil {
			return err
		}
	}
}

// Stats summarizes a trace for documentation and sanity checks.
type Stats struct {
	Packets       int
	DistinctFlows int
	MaxFlowSize   int
	TopFlowShare  float64
	PerPoint      []int
}

// Collect replays the trace and gathers summary statistics. Intended for
// offline tooling; it holds a per-flow counter map.
func Collect(cfg Config) (Stats, error) {
	sizes := make(map[uint64]int)
	per := make([]int, cfg.Points)
	n := 0
	err := Each(cfg, func(p Packet) error {
		sizes[p.Flow]++
		per[p.Point]++
		n++
		return nil
	})
	if err != nil {
		return Stats{}, err
	}
	st := Stats{Packets: n, DistinctFlows: len(sizes), PerPoint: per}
	for _, c := range sizes {
		if c > st.MaxFlowSize {
			st.MaxFlowSize = c
		}
	}
	if n > 0 {
		st.TopFlowShare = float64(st.MaxFlowSize) / float64(n)
	}
	return st, nil
}

package hll

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xhash"
)

// record hashes e into an m-register estimator the way HLL does.
func record(r Regs, e uint64, seed uint64) {
	i := xhash.Index(e, seed, len(r))
	r.Observe(i, xhash.Geometric(e, seed+1, MaxRegisterValue))
}

func TestEstimateEmpty(t *testing.T) {
	r := NewRegs(DefaultM)
	if got := Estimate(r); got != 0 {
		t.Fatalf("empty estimator estimate = %v, want 0", got)
	}
	if got := Estimate(nil); got != 0 {
		t.Fatalf("nil estimator estimate = %v, want 0", got)
	}
}

func TestEstimateAccuracySmall(t *testing.T) {
	// Linear counting regime: small cardinalities should be near-exact.
	for _, n := range []int{1, 5, 20, 50} {
		r := NewRegs(DefaultM)
		for e := 0; e < n; e++ {
			record(r, uint64(e)*2654435761, 77)
		}
		got := Estimate(r)
		if math.Abs(got-float64(n)) > 3+0.25*float64(n) {
			t.Fatalf("n=%d: estimate %.1f too far from truth", n, got)
		}
	}
}

func TestEstimateAccuracyLarge(t *testing.T) {
	// Within ~5 standard errors for large cardinalities.
	for _, n := range []int{1000, 10000, 100000} {
		r := NewRegs(DefaultM)
		for e := 0; e < n; e++ {
			record(r, uint64(e), 123)
		}
		got := Estimate(r)
		rel := math.Abs(got-float64(n)) / float64(n)
		if rel > 5*StandardError(DefaultM) {
			t.Fatalf("n=%d: estimate %.0f, relative error %.3f exceeds 5 sigma", n, got, rel)
		}
	}
}

func TestEstimateDuplicateInsensitive(t *testing.T) {
	a := NewRegs(DefaultM)
	b := NewRegs(DefaultM)
	for e := 0; e < 500; e++ {
		record(a, uint64(e), 9)
		record(b, uint64(e), 9)
		record(b, uint64(e), 9) // duplicates
		record(b, uint64(e), 9)
	}
	if !a.Equal(b) {
		t.Fatal("duplicate insertions changed register state")
	}
}

func TestMergeMaxIsUnion(t *testing.T) {
	// Recording S1 into A and S2 into B, then merging, must equal
	// recording S1 union S2 into a fresh estimator. This is the property
	// the temporal/spatial joins rely on.
	a, b, u := NewRegs(DefaultM), NewRegs(DefaultM), NewRegs(DefaultM)
	for e := 0; e < 3000; e++ {
		record(a, uint64(e), 5)
		record(u, uint64(e), 5)
	}
	for e := 2000; e < 6000; e++ {
		record(b, uint64(e), 5)
		record(u, uint64(e), 5)
	}
	if err := a.MergeMax(b); err != nil {
		t.Fatal(err)
	}
	if !a.Equal(u) {
		t.Fatal("merge(A,B) != sketch(S1 ∪ S2)")
	}
}

func TestMergeMaxCommutativeIdempotent(t *testing.T) {
	err := quick.Check(func(seedA, seedB uint64) bool {
		a1, a2, b1, b2 := NewRegs(64), NewRegs(64), NewRegs(64), NewRegs(64)
		for e := 0; e < 200; e++ {
			record(a1, uint64(e)^seedA, 1)
			record(a2, uint64(e)^seedA, 1)
			record(b1, uint64(e)*3^seedB, 1)
			record(b2, uint64(e)*3^seedB, 1)
		}
		// a1 <- b1 ; b2 <- a2 : commutativity.
		if err := a1.MergeMax(b1); err != nil {
			return false
		}
		if err := b2.MergeMax(a2); err != nil {
			return false
		}
		if !a1.Equal(b2) {
			return false
		}
		// Idempotence: merging again changes nothing.
		before := a1.Clone()
		if err := a1.MergeMax(b1); err != nil {
			return false
		}
		return a1.Equal(before)
	}, &quick.Config{MaxCount: 20})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMergeMaxLengthMismatch(t *testing.T) {
	a, b := NewRegs(10), NewRegs(20)
	if err := a.MergeMax(b); err == nil {
		t.Fatal("expected error merging mismatched lengths")
	}
}

func TestObserveClamps(t *testing.T) {
	r := NewRegs(4)
	r.Observe(0, 200)
	if r[0] != MaxRegisterValue {
		t.Fatalf("register not clamped: %d", r[0])
	}
	r.Observe(0, 3)
	if r[0] != MaxRegisterValue {
		t.Fatal("Observe lowered a register")
	}
}

func TestResetAndClone(t *testing.T) {
	r := NewRegs(16)
	for e := 0; e < 100; e++ {
		record(r, uint64(e), 2)
	}
	c := r.Clone()
	r.Reset()
	if Estimate(r) != 0 {
		t.Fatal("reset estimator should estimate 0")
	}
	if Estimate(c) == 0 {
		t.Fatal("clone should be unaffected by reset")
	}
}

func TestMemoryBits(t *testing.T) {
	r := NewRegs(DefaultM)
	if got := r.MemoryBits(); got != DefaultM*RegisterBits {
		t.Fatalf("MemoryBits = %d, want %d", got, DefaultM*RegisterBits)
	}
}

func TestAlphaMonotone(t *testing.T) {
	if alpha(16) >= alpha(128) && alpha(16) != 0.673 {
		t.Fatal("unexpected alpha values")
	}
	for _, m := range []int{16, 32, 64, 128, 1024} {
		a := alpha(m)
		if a < 0.6 || a > 0.8 {
			t.Fatalf("alpha(%d) = %v out of plausible range", m, a)
		}
	}
}

func TestPackedRoundTrip(t *testing.T) {
	err := quick.Check(func(vals []uint8) bool {
		if len(vals) == 0 {
			return true
		}
		r := make(Regs, len(vals))
		for i, v := range vals {
			r[i] = v & MaxRegisterValue
		}
		return Pack(r).Unpack().Equal(r)
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPackedSetGetBoundaries(t *testing.T) {
	// Registers straddling word boundaries (every 64/gcd(5,64) pattern).
	p := NewPacked(200)
	for i := 0; i < 200; i++ {
		p.Set(i, uint8(i%32))
	}
	for i := 0; i < 200; i++ {
		if got := p.Get(i); got != uint8(i%32) {
			t.Fatalf("register %d: got %d want %d", i, got, i%32)
		}
	}
}

func TestPackedMergeMatchesRegs(t *testing.T) {
	a, b := NewRegs(300), NewRegs(300)
	for e := 0; e < 2000; e++ {
		record(a, uint64(e), 4)
		record(b, uint64(e)*7, 8)
	}
	pa, pb := Pack(a), Pack(b)
	if err := a.MergeMax(b); err != nil {
		t.Fatal(err)
	}
	if err := pa.MergeMax(pb); err != nil {
		t.Fatal(err)
	}
	if !pa.Unpack().Equal(a) {
		t.Fatal("packed merge differs from byte-wise merge")
	}
}

func TestPackedMergeMismatch(t *testing.T) {
	if err := NewPacked(5).MergeMax(NewPacked(6)); err == nil {
		t.Fatal("expected length-mismatch error")
	}
}

func TestPackedMemorySavings(t *testing.T) {
	p := NewPacked(1280)
	if p.MemoryBits() != 1280*RegisterBits {
		// 1280*5 = 6400 bits = exactly 100 words.
		t.Fatalf("packed memory = %d bits, want %d", p.MemoryBits(), 1280*RegisterBits)
	}
}

package hll

import "testing"

func TestFromWordsRoundTrip(t *testing.T) {
	r := NewRegs(100)
	for i := range r {
		r[i] = uint8(i % 32)
	}
	p := Pack(r)
	back, err := FromWords(100, p.Words())
	if err != nil {
		t.Fatal(err)
	}
	if !back.Unpack().Equal(r) {
		t.Fatal("FromWords(Words()) changed register state")
	}
}

func TestFromWordsLengthMismatch(t *testing.T) {
	if _, err := FromWords(100, make([]uint64, 3)); err == nil {
		t.Fatal("expected word-count error")
	}
}

func TestFromWordsRejectsPaddingBits(t *testing.T) {
	// 100 registers * 5 bits = 500 bits = 7.8125 words -> 8 words with 12
	// padding bits; setting any of them must be rejected (canonical
	// encodings only).
	p := NewPacked(100)
	words := make([]uint64, len(p.Words()))
	copy(words, p.Words())
	words[len(words)-1] |= 1 << 63
	if _, err := FromWords(100, words); err == nil {
		t.Fatal("expected non-canonical padding error")
	}
}

func TestFromWordsExactFit(t *testing.T) {
	// 64 registers * 5 = 320 bits = exactly 5 words: no padding to check.
	p := NewPacked(64)
	for i := 0; i < 64; i++ {
		p.Set(i, 31)
	}
	back, err := FromWords(64, p.Words())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if back.Get(i) != 31 {
			t.Fatalf("register %d = %d", i, back.Get(i))
		}
	}
}

package hll

import "fmt"

// Packed is a true 5-bit-per-register HLL register array packed into 64-bit
// words. It is the memory model the paper's accounting assumes and the
// representation used on the wire. It is slower to access than Regs, so the
// record path uses Regs and converts at epoch boundaries.
type Packed struct {
	n     int
	words []uint64
}

// NewPacked returns a zeroed packed array of n registers.
func NewPacked(n int) *Packed {
	nbits := n * RegisterBits
	return &Packed{
		n:     n,
		words: make([]uint64, (nbits+63)/64),
	}
}

// Pack converts a byte-per-register array into its packed form.
func Pack(r Regs) *Packed {
	p := NewPacked(len(r))
	PackInto(p.words, r)
	return p
}

// PackedWords returns the number of 64-bit words the packed form of n
// registers occupies.
func PackedWords(n int) int {
	return (n*RegisterBits + 63) / 64
}

// PackInto packs r (clamping to 5 bits) into words, which must have length
// PackedWords(len(r)). Unused padding bits of the last word are zero, so
// the output is canonical.
func PackInto(words []uint64, r Regs) {
	for i := range words {
		words[i] = 0
	}
	for i, v := range r {
		if v > MaxRegisterValue {
			v = MaxRegisterValue
		}
		bit := i * RegisterBits
		word, off := bit/64, uint(bit%64)
		words[word] |= uint64(v) << off
		if off+RegisterBits > 64 {
			words[word+1] |= uint64(v) >> (64 - off)
		}
	}
}

// UnpackInto unpacks words (the canonical packed form of len(dst)
// registers) into dst. It rejects a word slice of the wrong length and
// non-zero padding bits, mirroring FromWords.
func UnpackInto(dst Regs, words []uint64) error {
	if len(words) != PackedWords(len(dst)) {
		return fmt.Errorf("hll: %d words for %d registers, want %d", len(words), len(dst), PackedWords(len(dst)))
	}
	if extra := len(dst) * RegisterBits % 64; extra != 0 {
		if words[len(words)-1]&^((1<<uint(extra))-1) != 0 {
			return fmt.Errorf("hll: non-canonical padding bits in packed encoding")
		}
	}
	for i := range dst {
		bit := i * RegisterBits
		word, off := bit/64, uint(bit%64)
		v := words[word] >> off
		if off+RegisterBits > 64 {
			v |= words[word+1] << (64 - off)
		}
		dst[i] = uint8(v) & MaxRegisterValue
	}
	return nil
}

// Len returns the number of registers.
func (p *Packed) Len() int { return p.n }

// Get returns register i.
func (p *Packed) Get(i int) uint8 {
	bit := i * RegisterBits
	word, off := bit/64, uint(bit%64)
	v := p.words[word] >> off
	if off+RegisterBits > 64 {
		v |= p.words[word+1] << (64 - off)
	}
	return uint8(v) & MaxRegisterValue
}

// Set stores v (clamped to 5 bits) into register i.
func (p *Packed) Set(i int, v uint8) {
	if v > MaxRegisterValue {
		v = MaxRegisterValue
	}
	bit := i * RegisterBits
	word, off := bit/64, uint(bit%64)
	p.words[word] &^= uint64(MaxRegisterValue) << off
	p.words[word] |= uint64(v) << off
	if off+RegisterBits > 64 {
		rem := off + RegisterBits - 64
		p.words[word+1] &^= uint64(MaxRegisterValue) >> (RegisterBits - rem)
		p.words[word+1] |= uint64(v) >> (64 - off)
	}
}

// Unpack converts back to the byte-per-register representation.
func (p *Packed) Unpack() Regs {
	r := make(Regs, p.n)
	for i := range r {
		r[i] = p.Get(i)
	}
	return r
}

// MergeMax folds o into p by register-wise max.
func (p *Packed) MergeMax(o *Packed) error {
	if p.n != o.n {
		return fmt.Errorf("hll: packed merge length mismatch: %d vs %d", p.n, o.n)
	}
	for i := 0; i < p.n; i++ {
		if v := o.Get(i); v > p.Get(i) {
			p.Set(i, v)
		}
	}
	return nil
}

// MemoryBits returns the exact packed footprint in bits.
func (p *Packed) MemoryBits() int {
	return len(p.words) * 64
}

// Words exposes the packed backing words for wire encoding. The returned
// slice aliases the packed array; callers must not modify it.
func (p *Packed) Words() []uint64 { return p.words }

// FromWords reconstructs a packed array of n registers from backing words
// previously obtained via Words. The word slice is copied.
func FromWords(n int, words []uint64) (*Packed, error) {
	want := (n*RegisterBits + 63) / 64
	if len(words) != want {
		return nil, fmt.Errorf("hll: %d words for %d registers, want %d", len(words), n, want)
	}
	p := NewPacked(n)
	copy(p.words, words)
	// Reject stray bits beyond the last register: encodings are canonical
	// (every register state has exactly one byte representation).
	if extra := n * RegisterBits % 64; extra != 0 {
		last := p.words[len(p.words)-1]
		if last&^((1<<uint(extra))-1) != 0 {
			return nil, fmt.Errorf("hll: non-canonical padding bits in packed encoding")
		}
	}
	return p, nil
}

package hll

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

var genCorpus = flag.Bool("gen-corpus", false, "rewrite the committed fuzz seed corpus in testdata/fuzz")

// TestGenerateFuzzCorpus rewrites the committed seed corpus when run with
// -gen-corpus, in the `go test fuzz v1` format the fuzzer reads from
// testdata/fuzz/<Target>: register pairs shaped to stress the SWAR merge
// (lane boundaries, saturation) and compact blobs covering both the
// sparse and dense encodings.
func TestGenerateFuzzCorpus(t *testing.T) {
	if !*genCorpus {
		t.Skip("run with -gen-corpus to rewrite testdata/fuzz")
	}
	write := func(target string, seeds [][]string) {
		dir := filepath.Join("testdata", "fuzz", target)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, args := range seeds {
			body := "go test fuzz v1\n"
			for _, a := range args {
				body += a + "\n"
			}
			name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
			if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	bs := func(b []byte) string { return "[]byte(" + strconv.Quote(string(b)) + ")" }

	// FuzzMergeMax takes two equal-length register slices. Cover the word
	// remainder lanes (lengths straddling multiples of 8), saturated
	// registers, and asymmetric max directions.
	mixed := make([]byte, 19)
	flipped := make([]byte, 19)
	for i := range mixed {
		mixed[i] = byte(i % 32)
		flipped[i] = byte(31 - i%32)
	}
	saturated := make([]byte, 16)
	for i := range saturated {
		saturated[i] = MaxRegisterValue
	}
	write("FuzzMergeMax", [][]string{
		{bs(nil), bs(nil)},
		{bs(mixed), bs(flipped)},
		{bs(saturated), bs(make([]byte, 16))},
		{bs(mixed[:8]), bs(flipped[:8])},
		{bs(mixed[:9]), bs(flipped[:9])},
	})

	// FuzzCompact takes a register count and a compact blob. Seed the
	// encodings the codec actually emits: empty, sparse, dense, and a
	// truncated dense blob the decoder must reject.
	u16 := func(n int) string { return fmt.Sprintf("uint16(%d)", n) }
	sparse := make(Regs, 128)
	sparse[3], sparse[90] = 7, 31
	dense := make(Regs, 40)
	for i := range dense {
		dense[i] = uint8(1 + i%31)
	}
	denseBlob := AppendCompact(nil, dense)
	write("FuzzCompact", [][]string{
		{u16(128), bs(AppendCompact(nil, make(Regs, 128)))},
		{u16(128), bs(AppendCompact(nil, sparse))},
		{u16(40), bs(denseBlob)},
		{u16(40), bs(denseBlob[:len(denseBlob)/2])},
		{u16(0), bs([]byte{0})},
	})
}

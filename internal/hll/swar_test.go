package hll

import (
	"math/rand"
	"testing"
)

// scalarMergeMax is the reference implementation the SWAR path must match.
func scalarMergeMax(dst, src []uint8) {
	for i, v := range src {
		if dst[i] < v {
			dst[i] = v
		}
	}
}

func randRegs(rng *rand.Rand, n int) Regs {
	r := make(Regs, n)
	for i := range r {
		switch rng.Intn(4) {
		case 0:
			r[i] = 0
		case 1:
			r[i] = MaxRegisterValue
		default:
			r[i] = uint8(rng.Intn(MaxRegisterValue + 1))
		}
	}
	return r
}

// TestMergeMaxMatchesScalar pins SWAR MergeMax to the scalar reference for
// every length 0..130 (covering empty, sub-word, word-multiple, and
// word+tail shapes) across many random register fills.
func TestMergeMaxMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for n := 0; n <= 130; n++ {
		for trial := 0; trial < 20; trial++ {
			a := randRegs(rng, n)
			b := randRegs(rng, n)
			want := a.Clone()
			scalarMergeMax(want, b)
			got := a.Clone()
			if err := got.MergeMax(b); err != nil {
				t.Fatalf("n=%d: MergeMax: %v", n, err)
			}
			if !got.Equal(want) {
				t.Fatalf("n=%d trial=%d: SWAR merge diverged from scalar\n a=%v\n b=%v\n got=%v\n want=%v", n, trial, a, b, got, want)
			}
			// src must never be written.
			bCopy := b.Clone()
			if !b.Equal(bCopy) {
				t.Fatalf("n=%d: MergeMax mutated src", n)
			}
		}
	}
}

// TestResetAndIsZero pins Reset/IsZero against the scalar definition for
// lengths 0..130.
func TestResetAndIsZero(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for n := 0; n <= 130; n++ {
		r := randRegs(rng, n)
		allZero := true
		for _, v := range r {
			if v != 0 {
				allZero = false
			}
		}
		if got := r.IsZero(); got != allZero {
			t.Fatalf("n=%d: IsZero=%v, scalar says %v", n, got, allZero)
		}
		r.Reset()
		if !r.IsZero() {
			t.Fatalf("n=%d: not zero after Reset", n)
		}
		// One nonzero register anywhere must flip IsZero.
		if n > 0 {
			i := rng.Intn(n)
			r[i] = 1
			if r.IsZero() {
				t.Fatalf("n=%d: IsZero true with r[%d]=1", n, i)
			}
		}
	}
}

func TestMergeMaxWordLanes(t *testing.T) {
	// Exhaustive per-lane check over all 5-bit pairs, each pair placed in
	// every lane with adversarial neighbors, to rule out cross-lane borrow
	// contamination.
	for x := uint64(0); x <= MaxRegisterValue; x++ {
		for y := uint64(0); y <= MaxRegisterValue; y++ {
			want := x
			if y > x {
				want = y
			}
			for lane := 0; lane < 8; lane++ {
				const neighborsX = 0x1f001f001f001f00
				const neighborsY = 0x001f001f001f001f
				xi := neighborsX&^(0xff<<(8*lane)) | x<<(8*lane)
				yi := neighborsY&^(0xff<<(8*lane)) | y<<(8*lane)
				got := mergeMaxWord(xi, yi) >> (8 * lane) & 0xff
				if got != want {
					t.Fatalf("lane %d: max(%d,%d)=%d, want %d", lane, x, y, got, want)
				}
			}
		}
	}
}

func FuzzMergeMax(f *testing.F) {
	f.Add([]byte{0, 1, 31}, []byte{31, 0, 2})
	f.Add([]byte{}, []byte{})
	f.Add(make([]byte, 64), make([]byte, 64))
	f.Fuzz(func(t *testing.T, a, b []byte) {
		if len(a) != len(b) {
			return
		}
		x := make(Regs, len(a))
		y := make(Regs, len(b))
		for i := range a {
			x[i] = a[i] & MaxRegisterValue
			y[i] = b[i] & MaxRegisterValue
		}
		want := x.Clone()
		scalarMergeMax(want, y)
		if err := x.MergeMax(y); err != nil {
			t.Fatal(err)
		}
		if !x.Equal(want) {
			t.Fatalf("SWAR merge diverged from scalar: got %v want %v", x, want)
		}
	})
}

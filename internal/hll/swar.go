package hll

import "encoding/binary"

// SWAR (SIMD-within-a-register) byte-parallel register operations. Register
// values never exceed MaxRegisterValue = 31 < 0x80, which is the
// precondition the branchless byte-wise max below relies on: when every
// byte of both operands is at most 0x7F, the subtraction (y|H)-x cannot
// borrow across byte lanes, so the high bit of each byte of the result
// records that lane's comparison independently.

const swarHigh = 0x8080808080808080

// mergeMaxWord returns the lane-wise max of eight registers packed one per
// byte. Every byte of x and y must be <= 0x7F.
func mergeMaxWord(x, y uint64) uint64 {
	t := ((y | swarHigh) - x) & swarHigh // high bit set in lanes where y >= x
	mask := (t - (t >> 7)) | t           // 0xFF in lanes where y >= x, else 0x00
	return (y & mask) | (x &^ mask)
}

// MergeMaxBytes folds src into dst by element-wise max, eight registers per
// step with a scalar tail. The slices must have equal length and hold
// register values (<= MaxRegisterValue). This is the shared inner loop of
// every register merge: temporal/spatial/ST joins, C' <- push application,
// and the column folds of CompressTo.
func MergeMaxBytes(dst, src []uint8) {
	src = src[:len(dst)] // equal lengths, checked by callers; helps BCE
	i := 0
	for ; i+8 <= len(dst); i += 8 {
		x := binary.LittleEndian.Uint64(dst[i:])
		y := binary.LittleEndian.Uint64(src[i:])
		binary.LittleEndian.PutUint64(dst[i:], mergeMaxWord(x, y))
	}
	for ; i < len(dst); i++ {
		if src[i] > dst[i] {
			dst[i] = src[i]
		}
	}
}

// IsZero reports whether every register is zero, eight registers per step.
// Epoch boundaries use it to skip encoding and shipping untouched rows.
func (r Regs) IsZero() bool {
	i := 0
	for ; i+8 <= len(r); i += 8 {
		if binary.LittleEndian.Uint64(r[i:]) != 0 {
			return false
		}
	}
	for ; i < len(r); i++ {
		if r[i] != 0 {
			return false
		}
	}
	return true
}

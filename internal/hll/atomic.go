package hll

import (
	"encoding/binary"
	"sync/atomic"
	"unsafe"
)

// Lock-free register access for ingest deltas.
//
// A register array that concurrent recorders update needs word-granular
// atomic access: Go's sync/atomic has no byte operations, and mixing
// plain and atomic accesses to the same memory is a data race. AlignedRegs
// therefore backs the byte view with a []uint64, and the operations below
// address register i as a byte lane of word i/8.
//
// The recording operation is a max, which permits two crucial shortcuts:
//   - ObserveMaxAtomic reads the word first (a plain MOV on amd64 — atomic
//     loads carry no fence) and returns without any read-modify-write when
//     the register already covers the value. Registers saturate
//     geometrically, so the steady-state record path issues no atomic RMW
//     at all.
//   - DrainMaxWords folds a delta by atomically swapping each word to
//     zero. A concurrent observe lands either before the swap (captured in
//     this fold) or after (captured by the next one), so no update is ever
//     lost and the folded state is bit-identical to a serialized fold —
//     max is commutative and idempotent.

// laneXor folds the host byte order into the register-to-lane mapping
// branchlessly: lane k of a word sits at bit (k^laneXor)*8, with laneXor 0
// on little-endian hosts and 7 on big-endian ones.
var laneXor = func() int {
	x := uint16(1)
	if *(*byte)(unsafe.Pointer(&x)) == 0 {
		return 7
	}
	return 0
}()

// regShift returns the bit offset of register i inside word i/8.
func regShift(i int) uint {
	return uint((i&7)^laneXor) * 8
}

// AlignedRegs returns a zeroed n-register array together with its word
// backing. The byte view and the word slice alias the same memory: use the
// byte view for single-owner access (merges, encoding) and the word view
// for the atomic operations below — never both concurrently.
func AlignedRegs(n int) (Regs, []uint64) {
	if n <= 0 {
		return Regs{}, nil
	}
	words := make([]uint64, (n+7)/8)
	b := unsafe.Slice((*uint8)(unsafe.Pointer(&words[0])), len(words)*8)
	return Regs(b[:n:n]), words
}

// LoadRegAtomic atomically reads register i from its word backing.
func LoadRegAtomic(words []uint64, i int) uint8 {
	return uint8(atomic.LoadUint64(&words[i>>3]) >> regShift(i))
}

// ObserveMaxAtomic raises register i to at least v, reporting whether it
// wrote. The fast path is a fence-free load-and-compare; only a genuinely
// rising register pays a CAS (retried if a concurrent observe or drain
// moves the word underneath).
func ObserveMaxAtomic(words []uint64, i int, v uint8) bool {
	sh := regShift(i)
	p := &words[i>>3]
	for {
		w := atomic.LoadUint64(p)
		if uint8(w>>sh) >= v {
			return false
		}
		nw := w&^(0xff<<sh) | uint64(v)<<sh
		if atomic.CompareAndSwapUint64(p, w, nw) {
			return true
		}
	}
}

// DrainMaxWords atomically swaps every word of a delta to zero, folding
// each drained word into all dsts by register-wise max ("swap once, apply
// thrice"). dsts need not be word-aligned; their registers must extend to
// at least the drained length and belong to the caller.
func DrainMaxWords(words []uint64, n int, dsts ...Regs) {
	for k := range words {
		w := atomic.SwapUint64(&words[k], 0)
		if w == 0 {
			continue
		}
		base := k * 8
		if base+8 <= n {
			for _, d := range dsts {
				row := d[base : base+8 : base+8]
				cur := binary.NativeEndian.Uint64(row)
				binary.NativeEndian.PutUint64(row, mergeMaxWord(cur, w))
			}
			continue
		}
		// Tail word: spill to bytes and max the in-range lanes.
		var tmp [8]uint8
		binary.NativeEndian.PutUint64(tmp[:], w)
		for _, d := range dsts {
			for j := base; j < n; j++ {
				if v := tmp[j-base]; v > d[j] {
					d[j] = v
				}
			}
		}
	}
}

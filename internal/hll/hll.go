// Package hll implements the HyperLogLog cardinality estimator used as the
// per-flow single-flow estimator inside rSkt2(HLL) (Flajolet et al. 2007,
// Heule et al. 2013).
//
// The paper's configuration is m HLL registers of r = 5 bits each, so each
// register holds a value in [0, 31]. Two representations are provided:
//
//   - Regs: one byte per register, the working representation used on the
//     record path (fast, still value-clamped to 5 bits);
//   - Packed: true 5-bit packing into 64-bit words, used to account for and
//     validate the paper's memory model and for compact wire encoding.
//
// Estimation uses the standard bias-corrected HLL formula with the
// linear-counting small-range correction. With 64-bit hashing no
// large-range correction is required.
package hll

import (
	"bytes"
	"fmt"
	"math"
)

const (
	// RegisterBits is the width of one HLL register in bits (the paper's r).
	RegisterBits = 5
	// MaxRegisterValue is the largest value an r-bit register can hold.
	MaxRegisterValue = 1<<RegisterBits - 1
	// DefaultM is the register count per estimator recommended by the paper
	// (Section IV-C cites m = 128 as the accuracy-preserving constant).
	DefaultM = 128
)

// Regs is a flat array of HLL registers, one byte per register. Values are
// always kept within [0, MaxRegisterValue]. The zero-length Regs is valid
// and empty.
type Regs []uint8

// NewRegs returns a zeroed register array of length n.
func NewRegs(n int) Regs {
	return make(Regs, n)
}

// Observe records geometric value v into register i, keeping the register
// at the maximum value seen.
func (r Regs) Observe(i int, v uint8) {
	if v > MaxRegisterValue {
		v = MaxRegisterValue
	}
	if r[i] < v {
		r[i] = v
	}
}

// MergeMax folds register array o into r by element-wise max. The two
// arrays must have equal length; merging register arrays of different
// widths is the job of the expand-and-compress join in internal/core.
func (r Regs) MergeMax(o Regs) error {
	if len(r) != len(o) {
		return fmt.Errorf("hll: merge length mismatch: %d vs %d", len(r), len(o))
	}
	MergeMaxBytes(r, o)
	return nil
}

// Reset zeroes every register.
func (r Regs) Reset() {
	for i := range r {
		r[i] = 0
	}
}

// Clone returns a deep copy of r.
func (r Regs) Clone() Regs {
	c := make(Regs, len(r))
	copy(c, r)
	return c
}

// Equal reports whether r and o hold identical register values.
func (r Regs) Equal(o Regs) bool {
	return bytes.Equal(r, o)
}

// MemoryBits returns the memory footprint of r under the paper's model of
// RegisterBits bits per register.
func (r Regs) MemoryBits() int {
	return len(r) * RegisterBits
}

// alpha returns the HLL bias-correction constant for m registers.
func alpha(m int) float64 {
	switch {
	case m <= 16:
		return 0.673
	case m <= 32:
		return 0.697
	case m <= 64:
		return 0.709
	default:
		return 0.7213 / (1 + 1.079/float64(m))
	}
}

// exp2Neg[v] = 2^-v for register values, precomputed: the estimate is on
// the query hot path (Table I).
var exp2Neg = func() [MaxRegisterValue + 1]float64 {
	var t [MaxRegisterValue + 1]float64
	for v := range t {
		t[v] = math.Exp2(-float64(v))
	}
	return t
}()

// Estimate returns the HLL cardinality estimate over the register slice.
// The slice is typically one logical estimator of m registers, but any
// length >= 1 works (rSkt2 assembles virtual estimators from two rows).
// Read-only and safe for concurrent callers.
func Estimate(regs []uint8) float64 {
	m := len(regs)
	if m == 0 {
		return 0
	}
	sum := 0.0
	zeros := 0
	for _, v := range regs {
		sum += exp2Neg[v&MaxRegisterValue]
		if v == 0 {
			zeros++
		}
	}
	return estimateFrom(m, sum, zeros)
}

// EstimateUnion returns the HLL estimate over the element-wise max of regs
// and every slice in others (all equal length), without materializing the
// union. The sharded spread path uses it to answer queries across
// not-yet-folded shard deltas.
func EstimateUnion(regs []uint8, others [][]uint8) float64 {
	m := len(regs)
	if m == 0 {
		return 0
	}
	sum := 0.0
	zeros := 0
	for i, v := range regs {
		for _, o := range others {
			if o[i] > v {
				v = o[i]
			}
		}
		sum += exp2Neg[v&MaxRegisterValue]
		if v == 0 {
			zeros++
		}
	}
	return estimateFrom(m, sum, zeros)
}

// estimateFrom finishes the bias-corrected estimate from the accumulated
// harmonic sum and zero-register count.
func estimateFrom(m int, sum float64, zeros int) float64 {
	fm := float64(m)
	e := alpha(m) * fm * fm / sum
	if e <= 2.5*fm && zeros > 0 {
		// Small-range correction: linear counting.
		return fm * math.Log(fm/float64(zeros))
	}
	return e
}

// StandardError returns the theoretical relative standard error of an HLL
// estimator with m registers (~1.04/sqrt(m)).
func StandardError(m int) float64 {
	return 1.04 / math.Sqrt(float64(m))
}

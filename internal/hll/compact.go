package hll

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// Compact wire encoding for register arrays. Epoch uploads are dominated by
// register payloads, and a real epoch is sparse: most columns of a spread
// sketch saw no packet. The compact form exploits that at two levels.
//
// The word layer (AppendRunWords/DecodeRunWords) run-length encodes 64-bit
// words: a stream of varint tokens t, each covering t>>1 words — zero words
// when t&1 == 0, literal little-endian words (following the token) when
// t&1 == 1. Runs are maximal and never empty, so every word slice has
// exactly one encoding and a decoder can reject zero-progress input.
//
// The array layer (AppendCompact/DecodeCompact) prefixes one mode byte:
//
//	mode 0 (dense):  run-length words of the canonical 5-bit packing
//	mode 1 (sparse): run-length words of a presence bitmap (one bit per
//	                 register) followed by the nonzero register values, 5
//	                 bits each, packed into raw little-endian words
//
// The encoder picks sparse exactly when it wins on payload bits
// (5*nonzero + n < 5*n); the decoder enforces the same rule, plus zero
// padding bits and nonzero sparse values, so compact encodings stay
// canonical like the fixed packed form.

// AppendRunWords appends the run-length encoding of words to dst and
// returns the extended slice.
func AppendRunWords(dst []byte, words []uint64) []byte {
	for i := 0; i < len(words); {
		j := i
		if words[i] == 0 {
			for j < len(words) && words[j] == 0 {
				j++
			}
			dst = binary.AppendUvarint(dst, uint64(j-i)<<1)
		} else {
			for j < len(words) && words[j] != 0 {
				j++
			}
			dst = binary.AppendUvarint(dst, uint64(j-i)<<1|1)
			for _, w := range words[i:j] {
				dst = binary.LittleEndian.AppendUint64(dst, w)
			}
		}
		i = j
	}
	return dst
}

// DecodeRunWords decodes exactly len(dst) run-length-encoded words from the
// front of data, returning the number of bytes consumed. Decoding is
// strict: empty or overlong runs, adjacent runs of the same type, and zero
// words inside a literal run are all rejected, so exactly one byte string
// decodes to any given word slice.
func DecodeRunWords(dst []uint64, data []byte) (int, error) {
	off := 0
	filled := 0
	prevType := -1
	for filled < len(dst) {
		t, n := binary.Uvarint(data[off:])
		if n <= 0 {
			return 0, fmt.Errorf("hll: truncated or malformed run token")
		}
		// A trailing 0x00 group means a shorter encoding of the same token
		// exists; accepting it would give one word slice two encodings.
		if n > 1 && data[off+n-1] == 0 {
			return 0, fmt.Errorf("hll: non-minimal run token")
		}
		off += n
		count := t >> 1
		runType := int(t & 1)
		if count == 0 || count > uint64(len(dst)-filled) {
			return 0, fmt.Errorf("hll: run of %d words with %d expected", count, len(dst)-filled)
		}
		if runType == prevType {
			return 0, fmt.Errorf("hll: non-maximal run encoding")
		}
		prevType = runType
		if runType == 0 {
			for i := 0; i < int(count); i++ {
				dst[filled+i] = 0
			}
		} else {
			if len(data)-off < int(count)*8 {
				return 0, fmt.Errorf("hll: truncated literal run")
			}
			for i := 0; i < int(count); i++ {
				w := binary.LittleEndian.Uint64(data[off:])
				if w == 0 {
					return 0, fmt.Errorf("hll: zero word in literal run")
				}
				dst[filled+i] = w
				off += 8
			}
		}
		filled += int(count)
	}
	return off, nil
}

// AppendCompact appends the compact encoding of r to dst and returns the
// extended slice.
func AppendCompact(dst []byte, r Regs) []byte {
	n := len(r)
	nonzero := 0
	for _, v := range r {
		if v != 0 {
			nonzero++
		}
	}
	if nonzero*RegisterBits+n < n*RegisterBits {
		dst = append(dst, 1)
		bitmap := make([]uint64, (n+63)/64)
		vals := make([]uint64, PackedWords(nonzero))
		bit := 0
		for i, v := range r {
			if v == 0 {
				continue
			}
			bitmap[i/64] |= 1 << uint(i%64)
			word, off := bit/64, uint(bit%64)
			vals[word] |= uint64(v&MaxRegisterValue) << off
			if off+RegisterBits > 64 {
				vals[word+1] |= uint64(v&MaxRegisterValue) >> (64 - off)
			}
			bit += RegisterBits
		}
		dst = AppendRunWords(dst, bitmap)
		for _, w := range vals {
			dst = binary.LittleEndian.AppendUint64(dst, w)
		}
		return dst
	}
	dst = append(dst, 0)
	words := make([]uint64, PackedWords(n))
	PackInto(words, r)
	return AppendRunWords(dst, words)
}

// DecodeCompact decodes a compact encoding of exactly len(dst) registers
// from the front of data, overwriting dst, and returns the number of bytes
// consumed. Non-canonical encodings (wrong mode for the density, stray
// padding bits, zero sparse values) are rejected.
func DecodeCompact(dst Regs, data []byte) (int, error) {
	if len(data) < 1 {
		return 0, fmt.Errorf("hll: truncated compact encoding")
	}
	n := len(dst)
	switch data[0] {
	case 0:
		words := make([]uint64, PackedWords(n))
		consumed, err := DecodeRunWords(words, data[1:])
		if err != nil {
			return 0, err
		}
		if err := UnpackInto(dst, words); err != nil {
			return 0, err
		}
		nonzero := 0
		for _, v := range dst {
			if v != 0 {
				nonzero++
			}
		}
		if nonzero*RegisterBits+n < n*RegisterBits {
			return 0, fmt.Errorf("hll: dense encoding for a sparse array")
		}
		return 1 + consumed, nil
	case 1:
		bitmap := make([]uint64, (n+63)/64)
		consumed, err := DecodeRunWords(bitmap, data[1:])
		if err != nil {
			return 0, err
		}
		off := 1 + consumed
		if extra := n % 64; extra != 0 && bitmap[len(bitmap)-1]&^((1<<uint(extra))-1) != 0 {
			return 0, fmt.Errorf("hll: non-canonical bitmap padding")
		}
		nonzero := 0
		for _, w := range bitmap {
			nonzero += bits.OnesCount64(w)
		}
		if nonzero*RegisterBits+n >= n*RegisterBits {
			return 0, fmt.Errorf("hll: sparse encoding for a dense array")
		}
		valWords := PackedWords(nonzero)
		if len(data)-off < valWords*8 {
			return 0, fmt.Errorf("hll: truncated sparse values")
		}
		vals := make([]uint64, valWords)
		for i := range vals {
			vals[i] = binary.LittleEndian.Uint64(data[off:])
			off += 8
		}
		if extra := nonzero * RegisterBits % 64; extra != 0 && vals[valWords-1]&^((1<<uint(extra))-1) != 0 {
			return 0, fmt.Errorf("hll: non-canonical padding bits in sparse values")
		}
		for i := range dst {
			dst[i] = 0
		}
		bit := 0
		for i := 0; i < n; i++ {
			if bitmap[i/64]&(1<<uint(i%64)) == 0 {
				continue
			}
			word, o := bit/64, uint(bit%64)
			v := vals[word] >> o
			if o+RegisterBits > 64 {
				v |= vals[word+1] << (64 - o)
			}
			reg := uint8(v) & MaxRegisterValue
			if reg == 0 {
				return 0, fmt.Errorf("hll: zero register in sparse encoding")
			}
			dst[i] = reg
			bit += RegisterBits
		}
		return off, nil
	}
	return 0, fmt.Errorf("hll: unknown compact mode %d", data[0])
}

package hll

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestRunWordsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cases := [][]uint64{
		nil,
		{0},
		{1},
		{0, 0, 0},
		{7, 0, 0, 9},
		{0, 1, 0, 2, 0, 3},
	}
	for i := 0; i < 50; i++ {
		n := rng.Intn(40)
		w := make([]uint64, n)
		for j := range w {
			if rng.Intn(3) > 0 {
				w[j] = rng.Uint64()
			}
		}
		cases = append(cases, w)
	}
	for _, w := range cases {
		enc := AppendRunWords(nil, w)
		got := make([]uint64, len(w))
		consumed, err := DecodeRunWords(got, enc)
		if err != nil {
			t.Fatalf("words %v: %v", w, err)
		}
		if consumed != len(enc) {
			t.Fatalf("words %v: consumed %d of %d bytes", w, consumed, len(enc))
		}
		for j := range w {
			if got[j] != w[j] {
				t.Fatalf("words %v: round-trip mismatch at %d: %v", w, j, got)
			}
		}
	}
}

func TestDecodeRunWordsRejectsMalformed(t *testing.T) {
	dst := make([]uint64, 4)
	bad := map[string][]byte{
		"empty":           {},
		"zero-length run": {0},
		"overlong zeros":  {5 << 1},
		"truncated lits":  {2<<1 | 1, 1, 2, 3},
		"trailing needed": {1 << 1}, // covers 1 of 4 words then runs out
		// 0x88 0x00 is a two-byte varint for token 8 (canonical: 0x08);
		// accepting it would give the 4-zero-word slice two encodings.
		"non-minimal token": {0x88, 0x00},
	}
	for name, data := range bad {
		if _, err := DecodeRunWords(dst, data); err == nil {
			t.Errorf("%s: expected decode error", name)
		}
	}
}

func TestCompactRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for n := 0; n <= 130; n++ {
		for _, density := range []float64{0, 0.01, 0.1, 0.5, 1} {
			r := make(Regs, n)
			for i := range r {
				if rng.Float64() < density {
					r[i] = uint8(1 + rng.Intn(MaxRegisterValue))
				}
			}
			enc := AppendCompact(nil, r)
			got := make(Regs, n)
			// Pre-dirty the destination: decode must fully overwrite.
			for i := range got {
				got[i] = MaxRegisterValue
			}
			consumed, err := DecodeCompact(got, enc)
			if err != nil {
				t.Fatalf("n=%d density=%v: %v", n, density, err)
			}
			if consumed != len(enc) {
				t.Fatalf("n=%d: consumed %d of %d", n, consumed, len(enc))
			}
			if !got.Equal(r) {
				t.Fatalf("n=%d density=%v: round-trip mismatch", n, density)
			}
			// Decoding with trailing bytes present must consume only the
			// encoding (callers concatenate arrays).
			consumed2, err := DecodeCompact(got, append(bytes.Clone(enc), 0xAB, 0xCD))
			if err != nil || consumed2 != len(enc) {
				t.Fatalf("n=%d: decode with trailing bytes: consumed=%d err=%v", n, consumed2, err)
			}
		}
	}
}

func TestCompactSparseWinsWhenSparse(t *testing.T) {
	// One nonzero register out of 1024: the compact form must be far
	// smaller than the 5-bit dense packing (640 bytes).
	r := make(Regs, 1024)
	r[700] = 17
	enc := AppendCompact(nil, r)
	if len(enc) >= 64 {
		t.Fatalf("sparse encoding of 1/1024 registers took %d bytes", len(enc))
	}
	// Fully dense arrays must still round-trip near the packed size.
	for i := range r {
		r[i] = uint8(1 + i%MaxRegisterValue)
	}
	enc = AppendCompact(nil, r)
	if len(enc) > PackedWords(1024)*8+16 {
		t.Fatalf("dense encoding took %d bytes", len(enc))
	}
}

func TestDecodeCompactRejectsMalformed(t *testing.T) {
	dst := make(Regs, 64)
	bad := map[string][]byte{
		"empty":        {},
		"unknown mode": {2},
		"dense trunc":  {0},
		"sparse trunc": {1},
	}
	for name, data := range bad {
		if _, err := DecodeCompact(dst, data); err == nil {
			t.Errorf("%s: expected decode error", name)
		}
	}

	// Sparse encoding whose density belongs to the dense mode.
	r := make(Regs, 64)
	for i := range r {
		r[i] = 3
	}
	// Hand-build mode-1: full bitmap + 64 packed values.
	bitmap := []uint64{^uint64(0)}
	vals := make([]uint64, PackedWords(64))
	PackInto(vals, r)
	enc := append([]byte{1}, AppendRunWords(nil, bitmap)...)
	for _, w := range vals {
		enc = append(enc, byte(w), byte(w>>8), byte(w>>16), byte(w>>24), byte(w>>32), byte(w>>40), byte(w>>48), byte(w>>56))
	}
	if _, err := DecodeCompact(dst, enc); err == nil {
		t.Error("expected rejection of sparse mode on a dense array")
	}

	// Sparse encoding carrying a zero value.
	one := make(Regs, 64)
	one[0] = 5
	good := AppendCompact(nil, one)
	if good[0] != 1 {
		t.Fatalf("expected sparse mode, got %d", good[0])
	}
	zeroVal := bytes.Clone(good)
	// The single 5-bit value lives at the start of the first value word;
	// zero it out.
	zeroVal[len(zeroVal)-8] &^= MaxRegisterValue
	if _, err := DecodeCompact(dst, zeroVal); err == nil {
		t.Error("expected rejection of zero sparse value")
	}
}

func TestPackIntoUnpackInto(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for n := 0; n <= 130; n++ {
		r := randRegs(rng, n)
		words := make([]uint64, PackedWords(n))
		PackInto(words, r)
		// Must agree with the Packed reference implementation.
		ref := Pack(r)
		for i, w := range ref.Words() {
			if words[i] != w {
				t.Fatalf("n=%d: PackInto word %d = %#x, Pack says %#x", n, i, words[i], w)
			}
		}
		got := make(Regs, n)
		if err := UnpackInto(got, words); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !got.Equal(r) {
			t.Fatalf("n=%d: pack/unpack mismatch", n)
		}
	}
	if err := UnpackInto(make(Regs, 10), make([]uint64, 3)); err == nil {
		t.Fatal("expected length-mismatch error")
	}
	if err := UnpackInto(make(Regs, 3), []uint64{1 << 63}); err == nil {
		t.Fatal("expected padding-bits error")
	}
}

func FuzzCompact(f *testing.F) {
	f.Add(uint16(128), AppendCompact(nil, make(Regs, 128)))
	sparse := make(Regs, 128)
	sparse[3], sparse[90] = 7, 31
	f.Add(uint16(128), AppendCompact(nil, sparse))
	dense := make(Regs, 40)
	for i := range dense {
		dense[i] = uint8(1 + i%31)
	}
	f.Add(uint16(40), AppendCompact(nil, dense))
	f.Add(uint16(0), []byte{0})
	f.Add(uint16(64), []byte{1, 2<<1 | 1, 0xff, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, n uint16, data []byte) {
		if n > 4096 {
			return
		}
		dst := make(Regs, n)
		consumed, err := DecodeCompact(dst, data)
		if err != nil {
			return
		}
		if consumed > len(data) {
			t.Fatalf("consumed %d of %d bytes", consumed, len(data))
		}
		// Whatever decoded must re-encode to the same bytes (canonical) and
		// hold only valid register values.
		for i, v := range dst {
			if v > MaxRegisterValue {
				t.Fatalf("register %d out of range: %d", i, v)
			}
		}
		re := AppendCompact(nil, dst)
		if !bytes.Equal(re, data[:consumed]) {
			t.Fatalf("non-canonical encoding accepted:\n in  %x\n out %x", data[:consumed], re)
		}
	})
}

package slidingsketch

import (
	"testing"

	"repro/internal/countmin"
)

func testParams() Params {
	return Params{D: 4, W: 512, Zones: 6, Seed: 3}
}

func TestValidate(t *testing.T) {
	if err := testParams().Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Params{{D: 0, W: 1, Zones: 1}, {D: 1, W: 0, Zones: 1}, {D: 1, W: 1, Zones: 0}} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("expected error for %+v", bad)
		}
	}
}

func TestWidthForMemory(t *testing.T) {
	// 2Mb, d=10, zones=11: 2097152/(10*11*32) = 595.
	if got := WidthForMemory(1<<21, 10, 11); got != 595 {
		t.Fatalf("WidthForMemory = %d, want 595", got)
	}
	if got := WidthForMemory(1, 10, 11); got != 1 {
		t.Fatalf("floor = %d, want 1", got)
	}
}

func TestEstimateWithinWindow(t *testing.T) {
	s := New(testParams())
	for i := 0; i < 10; i++ {
		s.Record(42)
	}
	if got := s.Estimate(42); got != 10 {
		t.Fatalf("Estimate = %d, want 10", got)
	}
	if got := s.Estimate(7); got != 0 {
		t.Fatalf("absent flow = %d, want 0", got)
	}
}

func TestExpiryAfterWindow(t *testing.T) {
	// Zones = 6 keeps 5 completed epochs + current. Data recorded now must
	// expire after 6 advances.
	s := New(testParams())
	s.Record(1)
	for i := 0; i < 5; i++ {
		s.Advance()
		if got := s.Estimate(1); got != 1 {
			t.Fatalf("after %d advances: estimate %d, want 1 (still in window)", i+1, got)
		}
	}
	s.Advance()
	if got := s.Estimate(1); got != 0 {
		t.Fatalf("after 6 advances: estimate %d, want 0 (expired)", got)
	}
}

func TestSlidingAccumulation(t *testing.T) {
	// Record 2 packets per epoch for 10 epochs; with 6 zones the window
	// holds the last 6 epochs' worth = 12.
	s := New(testParams())
	for k := 0; k < 10; k++ {
		s.Record(9)
		s.Record(9)
		if k < 9 {
			s.Advance()
		}
	}
	if got := s.Estimate(9); got != 12 {
		t.Fatalf("windowed estimate = %d, want 12", got)
	}
}

func TestOneSidedError(t *testing.T) {
	s := New(Params{D: 3, W: 32, Zones: 4, Seed: 5}) // force collisions
	truth := make(map[uint64]int64)
	for f := uint64(0); f < 200; f++ {
		n := int64(f%5 + 1)
		for i := int64(0); i < n; i++ {
			s.Record(f)
		}
		truth[f] = n
	}
	for f, want := range truth {
		if got := s.Estimate(f); got < want {
			t.Fatalf("flow %d: estimate %d < truth %d", f, got, want)
		}
	}
}

func TestReset(t *testing.T) {
	s := New(testParams())
	s.Record(1)
	s.Advance()
	s.Record(1)
	s.Reset()
	if got := s.Estimate(1); got != 0 {
		t.Fatalf("after Reset estimate = %d, want 0", got)
	}
}

func TestMemoryBits(t *testing.T) {
	s := New(Params{D: 10, W: 100, Zones: 11, Seed: 0})
	want := 10 * 100 * 11 * countmin.CounterBits
	if got := s.MemoryBits(); got != want {
		t.Fatalf("MemoryBits = %d, want %d", got, want)
	}
}

func TestAdvanceWrapsZones(t *testing.T) {
	s := New(Params{D: 2, W: 8, Zones: 3, Seed: 1})
	for k := 0; k < 20; k++ {
		s.Record(uint64(k))
		s.Advance()
	}
	// Only the last 3 epochs' flows may remain.
	for k := 0; k < 17; k++ {
		if got := s.Estimate(uint64(k)); got > 2 {
			// Small collision noise is possible with W=8; a surviving
			// full count would be suspicious.
			t.Fatalf("flow %d should have expired, estimate %d", k, got)
		}
	}
}

// Package slidingsketch implements the CountMin instance of the Sliding
// Sketch framework (Gou et al., KDD 2020), the paper's flow-size baseline.
//
// Sliding Sketch adapts a sketch to the sliding window [t-T, t) by dividing
// each bucket into time zones and cyclically expiring the oldest zone: a
// scanning pointer sweeps every bucket exactly once per epoch h = T/n, and
// when it passes a bucket it clears the zone that leaves the window. A
// query sums a bucket's live zones.
//
// This implementation advances at epoch granularity (one Advance per epoch,
// clearing the expired zone of every bucket), which is the state the
// structure is in at the epoch-end query instants the experiments use. The
// paper's evaluation uses d = 10 rows; memory is d*w*zones counters, which
// is why a fixed memory budget leaves each zone far less resolution than
// the two-sketch design enjoys — the effect Figures 8-13 measure.
package slidingsketch

import (
	"fmt"

	"repro/internal/countmin"
	"repro/internal/xhash"
)

// DefaultDepth is the row count used in the paper's evaluation.
const DefaultDepth = 10

// Params configures a sliding CountMin sketch.
type Params struct {
	// D is the number of rows (paper: 10).
	D int
	// W is the number of buckets per row.
	W int
	// Zones is the number of time zones per bucket. For a window of n
	// epochs this is n+1: n full zones plus the zone being filled.
	Zones int
	// Seed is the hash seed.
	Seed uint64
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.D <= 0 || p.W <= 0 || p.Zones <= 0 {
		return fmt.Errorf("slidingsketch: dimensions must be positive: %+v", p)
	}
	return nil
}

// WidthForMemory returns the bucket count per row fitting memBits with d
// rows of zones counters of countmin.CounterBits bits each.
func WidthForMemory(memBits, d, zones int) int {
	w := memBits / (d * zones * countmin.CounterBits)
	if w < 1 {
		w = 1
	}
	return w
}

// Sketch is a sliding CountMin. Not safe for concurrent use.
type Sketch struct {
	params Params
	// counters[i] holds W*Zones values; bucket j's zones occupy
	// [j*Zones, (j+1)*Zones).
	counters [][]int64
	// cur is the zone currently being written.
	cur int
}

// New creates a zeroed sliding sketch.
func New(p Params) *Sketch {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	counters := make([][]int64, p.D)
	for i := range counters {
		counters[i] = make([]int64, p.W*p.Zones)
	}
	return &Sketch{params: p, counters: counters}
}

// Params returns the configuration.
func (s *Sketch) Params() Params { return s.params }

// Record adds one occurrence of flow f to the current zone.
func (s *Sketch) Record(f uint64) {
	p := &s.params
	for i := 0; i < p.D; i++ {
		j := xhash.Index(f^p.Seed, uint64(i)+1, p.W)
		s.counters[i][j*p.Zones+s.cur]++
	}
}

// Advance moves to the next epoch: the zone that leaves the window is
// cleared and becomes the new current zone (the effect of the scanning
// pointer having swept all buckets during the elapsed epoch).
func (s *Sketch) Advance() {
	p := &s.params
	s.cur = (s.cur + 1) % p.Zones
	for i := 0; i < p.D; i++ {
		row := s.counters[i]
		for j := 0; j < p.W; j++ {
			row[j*p.Zones+s.cur] = 0
		}
	}
}

// Estimate returns the windowed size estimate for flow f: per row the sum
// of the bucket's live zones, minimized across rows.
func (s *Sketch) Estimate(f uint64) int64 {
	p := &s.params
	est := int64(1<<62 - 1)
	for i := 0; i < p.D; i++ {
		j := xhash.Index(f^p.Seed, uint64(i)+1, p.W)
		sum := int64(0)
		for z := 0; z < p.Zones; z++ {
			sum += s.counters[i][j*p.Zones+z]
		}
		if sum < est {
			est = sum
		}
	}
	if est < 0 {
		return 0
	}
	return est
}

// Reset clears all zones.
func (s *Sketch) Reset() {
	for i := range s.counters {
		row := s.counters[i]
		for j := range row {
			row[j] = 0
		}
	}
	s.cur = 0
}

// MemoryBits returns the footprint under the paper's accounting.
func (s *Sketch) MemoryBits() int {
	return s.params.D * s.params.W * s.params.Zones * countmin.CounterBits
}

package experiments

import (
	"strings"
	"testing"
	"time"
)

// testConfig shrinks the workload so the full experiment path runs in
// seconds.
func testConfig() Config {
	cfg := QuickConfig()
	cfg.Trace.Packets = 150_000
	cfg.Trace.Flows = 10_000
	cfg.Trace.Duration = 4 * time.Minute
	cfg.SampleEvery = 10
	cfg.FlowSampleMod = 11
	return cfg
}

func TestScaledMem(t *testing.T) {
	cfg := testConfig()
	cfg.MemScaleDiv = 32
	if got := cfg.scaledMem(2); got != 2*Mb/32 {
		t.Fatalf("scaledMem(2) = %d", got)
	}
	cfg.MemScaleDiv = 0
	if got := cfg.scaledMem(2); got != 2*Mb {
		t.Fatalf("scaledMem with div 0 = %d", got)
	}
}

func TestSampleFlowDeterministic(t *testing.T) {
	cfg := testConfig()
	for f := uint64(0); f < 100; f++ {
		if cfg.sampleFlow(f) != cfg.sampleFlow(f) {
			t.Fatal("sampleFlow not deterministic")
		}
	}
	cfg.FlowSampleMod = 1
	if !cfg.sampleFlow(12345) {
		t.Fatal("mod 1 must sample everything")
	}
}

func TestSizeAccuracyExperimentShape(t *testing.T) {
	res, err := RunSizeAccuracy(testConfig(), "Fig. 8 (test)", []int{2, 2, 2}, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 2 {
		t.Fatalf("series = %d, want 2", len(res.Series))
	}
	proto, base := res.Series[0], res.Series[1]
	if proto.Summary.Count == 0 {
		t.Fatal("no flows scored")
	}
	// The paper's headline: the two-sketch design beats Sliding Sketch
	// decisively at equal memory.
	if proto.Summary.AvgAbsErr >= base.Summary.AvgAbsErr {
		t.Fatalf("two-sketch avg err %.2f not below Sliding Sketch %.2f",
			proto.Summary.AvgAbsErr, base.Summary.AvgAbsErr)
	}
	text := FormatAccuracy(res)
	if !strings.Contains(text, "two-sketch") || !strings.Contains(text, "Sliding Sketch") {
		t.Fatalf("report missing methods:\n%s", text)
	}
}

func TestSpreadAccuracyExperimentShape(t *testing.T) {
	res, err := RunSpreadAccuracy(testConfig(), "Fig. 3 (test)", []int{2, 2, 2}, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	proto, base := res.Series[0], res.Series[1]
	if proto.Summary.Count == 0 {
		t.Fatal("no flows scored")
	}
	if proto.Summary.AvgAbsErr >= base.Summary.AvgAbsErr {
		t.Fatalf("three-sketch avg err %.2f not below VATE %.2f",
			proto.Summary.AvgAbsErr, base.Summary.AvgAbsErr)
	}
}

func TestDiversityExperimentRuns(t *testing.T) {
	res, err := RunSizeAccuracy(testConfig(), "Fig. 10 (test)", []int{2, 4, 8}, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Series[0].Summary.Count == 0 {
		t.Fatal("no flows scored under diversity")
	}
}

func TestEpochSweepShape(t *testing.T) {
	cfg := testConfig()
	res, err := RunEpochSweep(cfg, "Fig. 13 (test)", "size", 2, []int{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("sweep points = %d", len(res.Points))
	}
	for _, p := range res.Points {
		if p.ProtocolAvgAbsErr >= p.BaselineAvgAbsErr {
			t.Fatalf("n=%d: protocol %.2f not below baseline %.2f",
				p.N, p.ProtocolAvgAbsErr, p.BaselineAvgAbsErr)
		}
	}
	if out := FormatSweep(res); !strings.Contains(out, "n") {
		t.Fatal("empty sweep report")
	}
}

func TestEpochSweepRejectsBadN(t *testing.T) {
	if _, err := RunEpochSweep(testConfig(), "x", "size", 2, []int{7}); err == nil {
		t.Fatal("expected error: 7 does not divide 60s")
	}
	if _, err := RunEpochSweep(testConfig(), "x", "bogus", 2, []int{5}); err == nil {
		t.Fatal("expected error for unknown kind")
	}
}

func TestQueryOverheadOrdering(t *testing.T) {
	res, err := RunQueryOverhead(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Table I's shape: local-memory queries are orders of magnitude
	// cheaper than RTT-bound baseline queries.
	if res.TwoSketch >= res.SlidingSketch {
		t.Fatalf("two-sketch %v not below Sliding Sketch %v", res.TwoSketch, res.SlidingSketch)
	}
	if res.ThreeSketch >= res.VATE {
		t.Fatalf("three-sketch %v not below VATE %v", res.ThreeSketch, res.VATE)
	}
	if res.SlidingSketch < 10*res.TwoSketch {
		t.Fatalf("baseline gap too small: %v vs %v (expected RTT-dominated)",
			res.SlidingSketch, res.TwoSketch)
	}
	if out := FormatOverhead(res); !strings.Contains(out, "Table I") {
		t.Fatal("bad overhead report")
	}
}

func TestThroughputPositive(t *testing.T) {
	res, err := RunThroughput(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for name, v := range map[string]float64{
		"two-sketch":            res.TwoSketchPPS,
		"three-sketch":          res.ThreeSketchPPS,
		"sliding sketch":        res.SlidingSketchPPS,
		"vate":                  res.VATEPPS,
		"two-sketch parallel":   res.TwoSketchParallelPPS,
		"three-sketch parallel": res.ThreeSketchParallelPPS,
	} {
		if v < 100_000 {
			t.Fatalf("%s throughput %.0f pps implausibly low", name, v)
		}
	}
	if res.Workers < 1 {
		t.Fatalf("parallel measurement reported %d workers", res.Workers)
	}
	if out := FormatThroughput(res); !strings.Contains(out, "Table II") {
		t.Fatal("bad throughput report")
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
		"fig11", "fig12", "fig13a", "fig13b", "fig13c", "fig13d",
		"table1", "table2",
		"ablation-enhance", "ablation-upload", "ablation-m",
		"ablation-estimator", "ablation-core-sketch", "detect-latency",
		"mem-sweep-size", "mem-sweep-spread",
	}
	reg := Registry()
	for _, id := range want {
		if _, ok := reg[id]; !ok {
			t.Fatalf("experiment %q missing from registry", id)
		}
	}
	if len(reg) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(reg), len(want))
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := Run(testConfig(), "fig99"); err == nil {
		t.Fatal("expected unknown-experiment error")
	}
}

func TestUploadModeAblationEquivalence(t *testing.T) {
	res, err := RunUploadModeAblation(testConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Variants) != 2 {
		t.Fatalf("variants = %d", len(res.Variants))
	}
	a, b := res.Variants[0].Summary, res.Variants[1].Summary
	// Identical accuracy: recovery is exact, so the cheap design loses
	// nothing.
	if a.AvgAbsErr != b.AvgAbsErr || a.Count != b.Count {
		t.Fatalf("cumulative (%.3f) and delta (%.3f) accuracy differ", a.AvgAbsErr, b.AvgAbsErr)
	}
	if res.Variants[0].MemoryMbE >= res.Variants[1].MemoryMbE {
		t.Fatal("cumulative mode should cost less memory")
	}
	if out := FormatAblation(res); !strings.Contains(out, "ablation-upload") {
		t.Fatal("bad ablation report")
	}
}

func TestEstimatorAblationShape(t *testing.T) {
	res, err := RunEstimatorAblation(testConfig(), 2, 300, 800)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Variants) != 4 {
		t.Fatalf("variants = %d, want 4", len(res.Variants))
	}
	for _, v := range res.Variants {
		if v.Summary.Count == 0 {
			t.Fatalf("%s scored no flows", v.Name)
		}
		if v.Summary.RelStdErr <= 0 {
			t.Fatalf("%s has zero stderr, suspicious", v.Name)
		}
	}
	// The paper picks rSkt2(HLL) as the most accurate at equal memory.
	hllErr := res.Variants[0].Summary.RelStdErr
	for _, v := range res.Variants[1:] {
		if hllErr > 2*v.Summary.RelStdErr {
			t.Fatalf("HLL (%.3f) much worse than %s (%.3f): estimator comparison inverted",
				hllErr, v.Name, v.Summary.RelStdErr)
		}
	}
}

func TestDetectionLatencyShape(t *testing.T) {
	cfg := testConfig()
	// Fixed budgets: the measured-overhead path divides by wall time,
	// which race/instrumented builds inflate.
	res, err := RunDetectionLatencyWithBudgets(cfg, 2, 2000, 15)
	if err != nil {
		t.Fatal(err)
	}
	if res.TruthEpoch <= res.AttackEpoch {
		t.Fatalf("truth crossed at %d, before/at attack onset %d", res.TruthEpoch, res.AttackEpoch)
	}
	proto, base := res.LatencyEpochs()
	if proto < 0 {
		t.Fatal("three-sketch never detected the attack")
	}
	// The RTT-bound baseline can scan far fewer candidates per epoch, so
	// it must not detect faster than the protocol.
	if base >= 0 && base < proto {
		t.Fatalf("baseline detected faster (%d) than protocol (%d)", base, proto)
	}
	if res.ProtoQueriesPerEpoch <= res.BaseQueriesPerEpoch {
		t.Fatalf("scan budgets inverted: proto %d, base %d",
			res.ProtoQueriesPerEpoch, res.BaseQueriesPerEpoch)
	}
	if out := FormatDetection(res); !strings.Contains(out, "alarm") {
		t.Fatal("bad detection report")
	}
}

func TestMemorySweepMonotone(t *testing.T) {
	res, err := RunMemorySweep(testConfig(), "test", "size", []int{2, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	// More memory must not hurt either method, and the design must win at
	// both settings.
	if res.Points[1].ProtocolAvgAbsErr > res.Points[0].ProtocolAvgAbsErr {
		t.Fatalf("protocol error grew with memory: %+v", res.Points)
	}
	if res.Points[1].BaselineAvgAbsErr > res.Points[0].BaselineAvgAbsErr {
		t.Fatalf("baseline error grew with memory: %+v", res.Points)
	}
	for _, p := range res.Points {
		if p.ProtocolAvgAbsErr >= p.BaselineAvgAbsErr {
			t.Fatalf("ordering inverted at %dMb", p.MemoryMb)
		}
	}
	if out := FormatMemSweep(res); !strings.Contains(out, "Mb") {
		t.Fatal("bad mem-sweep report")
	}
	if _, err := RunMemorySweep(testConfig(), "x", "bogus", []int{2}); err == nil {
		t.Fatal("expected unknown-kind error")
	}
}

func TestCoreSketchAblationShape(t *testing.T) {
	res, err := RunCoreSketchAblation(testConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Variants) != 2 {
		t.Fatalf("variants = %d, want 2", len(res.Variants))
	}
	for _, v := range res.Variants {
		if v.Summary.Count == 0 {
			t.Fatalf("%s scored no flows", v.Name)
		}
	}
	// Both variants must be the same flow set (same trace, same sampling).
	if res.Variants[0].Summary.Count != res.Variants[1].Summary.Count {
		t.Fatalf("variant flow counts differ: %d vs %d",
			res.Variants[0].Summary.Count, res.Variants[1].Summary.Count)
	}
}

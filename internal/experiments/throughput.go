package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/countmin"
	"repro/internal/cputime"
	"repro/internal/hll"
	"repro/internal/rskt"
	"repro/internal/slidingsketch"
	"repro/internal/vate"
)

// ThroughputResult is the regenerated Table II: the online packet-recording
// rate of each method in packets per second. The paper's designs record
// into their two or three local sketches; the baselines record into their
// own local structure. (All methods record locally — the difference the
// table shows is the per-packet datapath cost.)
//
// The Parallel rates measure the sharded ingest path: Workers goroutines
// (GOMAXPROCS, shard-bounded) feeding one point through RecordBatch.
type ThroughputResult struct {
	TwoSketchPPS     float64
	SlidingSketchPPS float64
	ThreeSketchPPS   float64
	VATEPPS          float64

	// Workers is the goroutine count of the parallel measurements.
	Workers int
	// TwoSketchParallelPPS is the aggregate rate of Workers goroutines
	// batch-recording into one sharded size point.
	TwoSketchParallelPPS float64
	// ThreeSketchParallelPPS is the same for one sharded spread point.
	ThreeSketchParallelPPS float64

	// PipelineScaling is the per-core run-to-completion pipeline scaling
	// curve (DESIGN.md §12): one row per worker count, rates CPU-projected
	// from per-worker thread CPU time so the curve is meaningful even on a
	// core-limited box (see timePipelineWorkers).
	PipelineScaling []PipelineScalingRow
}

// PipelineScalingRow is one worker count of the pipeline scaling curve.
type PipelineScalingRow struct {
	Workers int
	// TwoSketchPPS / ThreeSketchPPS are the aggregate pipeline ingest
	// rates for the two designs at this worker count.
	TwoSketchPPS   float64
	ThreeSketchPPS float64
	// CPUProjected tells whether the rates come from per-worker thread
	// CPU time (true, Linux) or degraded to wall clock (false).
	CPUProjected bool
}

// throughputPackets is the number of packets each method is timed over.
const throughputPackets = 1_000_000

// RunThroughput measures Table II.
func RunThroughput(cfg Config) (ThroughputResult, error) {
	var out ThroughputResult
	seed := cfg.Seed
	mem := cfg.scaledMem(2)
	n := cfg.Window.N

	// Pre-generate the packet workload so generation cost is excluded.
	flows := make([]uint64, throughputPackets)
	elems := make([]uint64, throughputPackets)
	rng := uint64(88172645463325252)
	for i := range flows {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		flows[i] = rng % 10_000
		elems[i] = rng >> 32
	}

	sizeParams := countmin.Params{
		D:    countmin.DefaultDepth,
		W:    countmin.WidthForMemory(mem, countmin.DefaultDepth),
		Seed: seed,
	}
	sizePt, err := core.NewSizePoint(0, sizeParams, core.SizeModeCumulative)
	if err != nil {
		return out, err
	}
	out.TwoSketchPPS = timeRecords(func(i int) {
		sizePt.Record(flows[i])
	})

	spreadParams := rskt.Params{
		W: rskt.WidthForMemory(mem, hll.DefaultM), M: hll.DefaultM, Seed: seed,
	}
	spreadPt, err := core.NewSpreadPoint(0, spreadParams)
	if err != nil {
		return out, err
	}
	out.ThreeSketchPPS = timeRecords(func(i int) {
		spreadPt.Record(flows[i], elems[i])
	})

	// Parallel ingest: fresh points (so the sequential timings above are
	// undisturbed), GOMAXPROCS workers pulling chunk ranges off a shared
	// counter and feeding them through RecordBatch.
	out.Workers = runtime.GOMAXPROCS(0)
	sizeParPt, err := core.NewSizePoint(1, sizeParams, core.SizeModeCumulative)
	if err != nil {
		return out, err
	}
	out.TwoSketchParallelPPS = timeParallelRecords(out.Workers, func(lo, hi int) {
		sizeParPt.RecordBatch(flows[lo:hi])
	})
	spreadParPt, err := core.NewSpreadPoint(1, spreadParams)
	if err != nil {
		return out, err
	}
	pkts := make([]core.SpreadPacket, throughputPackets)
	for i := range pkts {
		pkts[i] = core.SpreadPacket{Flow: flows[i], Elem: elems[i]}
	}
	out.ThreeSketchParallelPPS = timeParallelRecords(out.Workers, func(lo, hi int) {
		spreadParPt.RecordBatch(pkts[lo:hi])
	})

	// Per-core pipeline scaling curve: fresh points per row so each worker
	// count starts from cold sketches, 1, 2, 4, ... workers each owning a
	// private Recorder over a contiguous stripe of the workload.
	maxW := cfg.Workers
	if maxW <= 0 {
		maxW = 8
	}
	for w := 1; w <= maxW; w *= 2 {
		row := PipelineScalingRow{Workers: w}
		sizePipePt, err := core.NewSizePointShards(2, sizeParams, core.SizeModeCumulative, 1)
		if err != nil {
			return out, err
		}
		row.TwoSketchPPS, row.CPUProjected = timePipelineWorkers(w, func(worker, workers int) {
			rec := sizePipePt.Point.NewRecorder()
			defer rec.Close()
			lo, hi := stripeOf(worker, workers, throughputPackets)
			for i := lo; i < hi; i++ {
				rec.Record(flows[i], 0)
			}
		})
		spreadPipePt, err := core.NewSpreadPointShardsOf(2, func() *rskt.Sketch { return rskt.New(spreadParams) }, 1)
		if err != nil {
			return out, err
		}
		row.ThreeSketchPPS, _ = timePipelineWorkers(w, func(worker, workers int) {
			rec := spreadPipePt.NewRecorder()
			defer rec.Close()
			lo, hi := stripeOf(worker, workers, throughputPackets)
			for i := lo; i < hi; i++ {
				rec.Record(flows[i], elems[i])
			}
		})
		out.PipelineScaling = append(out.PipelineScaling, row)
	}

	sliding := slidingsketch.New(slidingsketch.Params{
		D:     slidingsketch.DefaultDepth,
		W:     slidingsketch.WidthForMemory(mem, slidingsketch.DefaultDepth, n),
		Zones: n,
		Seed:  seed,
	})
	out.SlidingSketchPPS = timeRecords(func(i int) {
		sliding.Record(flows[i])
	})

	vt := vate.New(vate.Params{
		VirtualBits:   vate.DefaultVirtualBits,
		PhysicalCells: vate.CellsForMemory(mem, n),
		WindowN:       n,
		Seed:          seed,
	})
	out.VATEPPS = timeRecords(func(i int) {
		vt.Record(flows[i], elems[i])
	})
	return out, nil
}

// timeRecords returns the packets-per-second rate of the record function.
func timeRecords(record func(i int)) float64 {
	start := time.Now()
	for i := 0; i < throughputPackets; i++ {
		record(i)
	}
	elapsed := time.Since(start)
	return float64(throughputPackets) / elapsed.Seconds()
}

// stripeOf splits [0, n) into `workers` near-equal contiguous ranges and
// returns worker's.
func stripeOf(worker, workers, n int) (lo, hi int) {
	stripe := n / workers
	lo = worker * stripe
	hi = lo + stripe
	if worker == workers-1 {
		hi = n
	}
	return lo, hi
}

// timePipelineWorkers measures the aggregate rate of `workers` pipeline
// goroutines, each feeding its stripe of the workload run-to-completion.
// On a core-limited box wall clock cannot show parallel speedup (the OS
// timeslices the workers over the same cores), so each worker is pinned
// to an OS thread and timed with its thread CPU clock: the projected
// aggregate rate is total packets over the slowest worker's CPU time —
// exactly the wall-clock aggregate a box with `workers` free cores would
// see, and a direct readout of whether per-packet cost is independent of
// the worker count (the run-to-completion property). Falls back to wall
// clock (reported via the second return) where the thread clock is
// unavailable.
func timePipelineWorkers(workers int, feed func(worker, workers int)) (float64, bool) {
	if workers < 1 {
		workers = 1
	}
	cpu := make([]time.Duration, workers)
	cpuOK := make([]bool, workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			runtime.LockOSThread()
			defer runtime.UnlockOSThread()
			c0, ok0 := cputime.Thread()
			feed(w, workers)
			c1, ok1 := cputime.Thread()
			cpu[w], cpuOK[w] = c1-c0, ok0 && ok1
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)
	var worst time.Duration
	for w := range cpu {
		if !cpuOK[w] || cpu[w] <= 0 {
			return float64(throughputPackets) / wall.Seconds(), false
		}
		if cpu[w] > worst {
			worst = cpu[w]
		}
	}
	return float64(throughputPackets) / worst.Seconds(), true
}

// parallelChunk is the packet count each worker claims per batch in the
// parallel throughput measurement.
const parallelChunk = 4096

// timeParallelRecords returns the aggregate packets-per-second rate of
// `workers` goroutines, each repeatedly claiming a [lo, hi) chunk of the
// workload off a shared counter and recording it as one batch.
func timeParallelRecords(workers int, recordRange func(lo, hi int)) float64 {
	if workers < 1 {
		workers = 1
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo := int(next.Add(parallelChunk)) - parallelChunk
				if lo >= throughputPackets {
					return
				}
				hi := lo + parallelChunk
				if hi > throughputPackets {
					hi = throughputPackets
				}
				recordRange(lo, hi)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	return float64(throughputPackets) / elapsed.Seconds()
}

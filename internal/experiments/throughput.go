package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/countmin"
	"repro/internal/hll"
	"repro/internal/rskt"
	"repro/internal/slidingsketch"
	"repro/internal/vate"
)

// ThroughputResult is the regenerated Table II: the online packet-recording
// rate of each method in packets per second. The paper's designs record
// into their two or three local sketches; the baselines record into their
// own local structure. (All methods record locally — the difference the
// table shows is the per-packet datapath cost.)
//
// The Parallel rates measure the sharded ingest path: Workers goroutines
// (GOMAXPROCS, shard-bounded) feeding one point through RecordBatch.
type ThroughputResult struct {
	TwoSketchPPS     float64
	SlidingSketchPPS float64
	ThreeSketchPPS   float64
	VATEPPS          float64

	// Workers is the goroutine count of the parallel measurements.
	Workers int
	// TwoSketchParallelPPS is the aggregate rate of Workers goroutines
	// batch-recording into one sharded size point.
	TwoSketchParallelPPS float64
	// ThreeSketchParallelPPS is the same for one sharded spread point.
	ThreeSketchParallelPPS float64
}

// throughputPackets is the number of packets each method is timed over.
const throughputPackets = 1_000_000

// RunThroughput measures Table II.
func RunThroughput(cfg Config) (ThroughputResult, error) {
	var out ThroughputResult
	seed := cfg.Seed
	mem := cfg.scaledMem(2)
	n := cfg.Window.N

	// Pre-generate the packet workload so generation cost is excluded.
	flows := make([]uint64, throughputPackets)
	elems := make([]uint64, throughputPackets)
	rng := uint64(88172645463325252)
	for i := range flows {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		flows[i] = rng % 10_000
		elems[i] = rng >> 32
	}

	sizeParams := countmin.Params{
		D:    countmin.DefaultDepth,
		W:    countmin.WidthForMemory(mem, countmin.DefaultDepth),
		Seed: seed,
	}
	sizePt, err := core.NewSizePoint(0, sizeParams, core.SizeModeCumulative)
	if err != nil {
		return out, err
	}
	out.TwoSketchPPS = timeRecords(func(i int) {
		sizePt.Record(flows[i])
	})

	spreadParams := rskt.Params{
		W: rskt.WidthForMemory(mem, hll.DefaultM), M: hll.DefaultM, Seed: seed,
	}
	spreadPt, err := core.NewSpreadPoint(0, spreadParams)
	if err != nil {
		return out, err
	}
	out.ThreeSketchPPS = timeRecords(func(i int) {
		spreadPt.Record(flows[i], elems[i])
	})

	// Parallel ingest: fresh points (so the sequential timings above are
	// undisturbed), GOMAXPROCS workers pulling chunk ranges off a shared
	// counter and feeding them through RecordBatch.
	out.Workers = runtime.GOMAXPROCS(0)
	sizeParPt, err := core.NewSizePoint(1, sizeParams, core.SizeModeCumulative)
	if err != nil {
		return out, err
	}
	out.TwoSketchParallelPPS = timeParallelRecords(out.Workers, func(lo, hi int) {
		sizeParPt.RecordBatch(flows[lo:hi])
	})
	spreadParPt, err := core.NewSpreadPoint(1, spreadParams)
	if err != nil {
		return out, err
	}
	pkts := make([]core.SpreadPacket, throughputPackets)
	for i := range pkts {
		pkts[i] = core.SpreadPacket{Flow: flows[i], Elem: elems[i]}
	}
	out.ThreeSketchParallelPPS = timeParallelRecords(out.Workers, func(lo, hi int) {
		spreadParPt.RecordBatch(pkts[lo:hi])
	})

	sliding := slidingsketch.New(slidingsketch.Params{
		D:     slidingsketch.DefaultDepth,
		W:     slidingsketch.WidthForMemory(mem, slidingsketch.DefaultDepth, n),
		Zones: n,
		Seed:  seed,
	})
	out.SlidingSketchPPS = timeRecords(func(i int) {
		sliding.Record(flows[i])
	})

	vt := vate.New(vate.Params{
		VirtualBits:   vate.DefaultVirtualBits,
		PhysicalCells: vate.CellsForMemory(mem, n),
		WindowN:       n,
		Seed:          seed,
	})
	out.VATEPPS = timeRecords(func(i int) {
		vt.Record(flows[i], elems[i])
	})
	return out, nil
}

// timeRecords returns the packets-per-second rate of the record function.
func timeRecords(record func(i int)) float64 {
	start := time.Now()
	for i := 0; i < throughputPackets; i++ {
		record(i)
	}
	elapsed := time.Since(start)
	return float64(throughputPackets) / elapsed.Seconds()
}

// parallelChunk is the packet count each worker claims per batch in the
// parallel throughput measurement.
const parallelChunk = 4096

// timeParallelRecords returns the aggregate packets-per-second rate of
// `workers` goroutines, each repeatedly claiming a [lo, hi) chunk of the
// workload off a shared counter and recording it as one batch.
func timeParallelRecords(workers int, recordRange func(lo, hi int)) float64 {
	if workers < 1 {
		workers = 1
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo := int(next.Add(parallelChunk)) - parallelChunk
				if lo >= throughputPackets {
					return
				}
				hi := lo + parallelChunk
				if hi > throughputPackets {
					hi = throughputPackets
				}
				recordRange(lo, hi)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	return float64(throughputPackets) / elapsed.Seconds()
}

package experiments

import (
	"time"

	"repro/internal/core"
	"repro/internal/countmin"
	"repro/internal/hll"
	"repro/internal/rskt"
	"repro/internal/slidingsketch"
	"repro/internal/vate"
)

// ThroughputResult is the regenerated Table II: the online packet-recording
// rate of each method in packets per second. The paper's designs record
// into their two or three local sketches; the baselines record into their
// own local structure. (All methods record locally — the difference the
// table shows is the per-packet datapath cost.)
type ThroughputResult struct {
	TwoSketchPPS     float64
	SlidingSketchPPS float64
	ThreeSketchPPS   float64
	VATEPPS          float64
}

// throughputPackets is the number of packets each method is timed over.
const throughputPackets = 1_000_000

// RunThroughput measures Table II.
func RunThroughput(cfg Config) (ThroughputResult, error) {
	var out ThroughputResult
	seed := cfg.Seed
	mem := cfg.scaledMem(2)
	n := cfg.Window.N

	// Pre-generate the packet workload so generation cost is excluded.
	flows := make([]uint64, throughputPackets)
	elems := make([]uint64, throughputPackets)
	rng := uint64(88172645463325252)
	for i := range flows {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		flows[i] = rng % 10_000
		elems[i] = rng >> 32
	}

	sizePt, err := core.NewSizePoint(0, countmin.Params{
		D:    countmin.DefaultDepth,
		W:    countmin.WidthForMemory(mem, countmin.DefaultDepth),
		Seed: seed,
	}, core.SizeModeCumulative)
	if err != nil {
		return out, err
	}
	out.TwoSketchPPS = timeRecords(func(i int) {
		sizePt.Record(flows[i])
	})

	spreadPt, err := core.NewSpreadPoint(0, rskt.Params{
		W: rskt.WidthForMemory(mem, hll.DefaultM), M: hll.DefaultM, Seed: seed,
	})
	if err != nil {
		return out, err
	}
	out.ThreeSketchPPS = timeRecords(func(i int) {
		spreadPt.Record(flows[i], elems[i])
	})

	sliding := slidingsketch.New(slidingsketch.Params{
		D:     slidingsketch.DefaultDepth,
		W:     slidingsketch.WidthForMemory(mem, slidingsketch.DefaultDepth, n),
		Zones: n,
		Seed:  seed,
	})
	out.SlidingSketchPPS = timeRecords(func(i int) {
		sliding.Record(flows[i])
	})

	vt := vate.New(vate.Params{
		VirtualBits:   vate.DefaultVirtualBits,
		PhysicalCells: vate.CellsForMemory(mem, n),
		WindowN:       n,
		Seed:          seed,
	})
	out.VATEPPS = timeRecords(func(i int) {
		vt.Record(flows[i], elems[i])
	})
	return out, nil
}

// timeRecords returns the packets-per-second rate of the record function.
func timeRecords(record func(i int)) float64 {
	start := time.Now()
	for i := 0; i < throughputPackets; i++ {
		record(i)
	}
	elapsed := time.Since(start)
	return float64(throughputPackets) / elapsed.Seconds()
}

package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/detect"
	"repro/internal/trace"
)

// DetectionResult is the regenerated "real-time" consequence of Table I:
// a DDoS victim must be found by *scanning* candidate destinations with
// networkwide T-queries, and the per-query overhead bounds how many
// candidates a measurement point can scan per epoch. The three-sketch
// design scans thousands of flows per epoch from local memory; the
// RTT-bound baseline scans a handful, so its detection lags by epochs.
type DetectionResult struct {
	Label string
	// AttackEpoch is the epoch the attack begins in.
	AttackEpoch int64
	// Threshold is the spread alarm level.
	Threshold float64
	// QueryBudget is the per-epoch time budget a point may spend scanning.
	QueryBudget time.Duration
	// ProtoQueriesPerEpoch and BaseQueriesPerEpoch are the scan widths the
	// measured Table I overheads allow within the budget.
	ProtoQueriesPerEpoch, BaseQueriesPerEpoch int
	// TruthEpoch is the first epoch boundary at which the victim's true
	// windowed spread reaches the threshold.
	TruthEpoch int64
	// ProtoEpoch and BaseEpoch are the boundaries at which each method's
	// scan actually raises the alarm (0 = never during the trace).
	ProtoEpoch, BaseEpoch int64
}

// LatencyEpochs returns each method's detection latency in epochs after
// the truth crossing (-1 if it never fired).
func (r DetectionResult) LatencyEpochs() (proto, base int64) {
	proto, base = -1, -1
	if r.ProtoEpoch > 0 {
		proto = r.ProtoEpoch - r.TruthEpoch
	}
	if r.BaseEpoch > 0 {
		base = r.BaseEpoch - r.TruthEpoch
	}
	return proto, base
}

// RunDetectionLatency measures DetectionResult on the standard trace with
// an injected high-spread attack flow, deriving the scan budgets from the
// measured Table I overheads.
func RunDetectionLatency(cfg Config, memMb int) (DetectionResult, error) {
	const queryBudget = time.Millisecond
	over, err := RunQueryOverhead(cfg)
	if err != nil {
		return DetectionResult{}, err
	}
	protoBudget := int(queryBudget / maxDuration(over.ThreeSketch, time.Nanosecond))
	baseBudget := int(queryBudget / maxDuration(over.VATE, time.Nanosecond))
	if protoBudget < 1 {
		protoBudget = 1
	}
	if baseBudget < 1 {
		baseBudget = 1
	}
	return RunDetectionLatencyWithBudgets(cfg, memMb, protoBudget, baseBudget)
}

// RunDetectionLatencyWithBudgets is RunDetectionLatency with explicit
// per-epoch scan budgets (used by tests, which must not depend on wall
// time).
func RunDetectionLatencyWithBudgets(cfg Config, memMb, protoBudget, baseBudget int) (DetectionResult, error) {
	const (
		victim        = uint64(0xDD05DD05)
		perEpoch      = 600 // fresh attack sources per epoch
		queryBudget   = time.Millisecond
		thresholdMult = 2.0 // threshold = perEpoch * mult (reached after ~2 epochs in-window)
	)
	h := cfg.Window.H()
	totalEpochs := int64(cfg.Trace.Duration / h)
	attackEpoch := totalEpochs/2 + 1
	attackStart := (attackEpoch - 1) * int64(h)
	attackEnd := cfg.Trace.Duration.Nanoseconds()
	attackEpochs := int(cfg.Trace.Duration.Nanoseconds()-attackStart) / int(h)

	res := DetectionResult{
		Label:                "detect-latency",
		AttackEpoch:          attackEpoch,
		Threshold:            perEpoch * thresholdMult,
		QueryBudget:          queryBudget,
		ProtoQueriesPerEpoch: protoBudget,
		BaseQueriesPerEpoch:  baseBudget,
	}

	memBits := cfg.scaledMem(memMb)
	sim, err := cluster.NewSpreadSim(cluster.SpreadSimConfig{
		Window:       cfg.Window,
		MemoryBits:   []int{memBits, memBits, memBits},
		Seed:         cfg.Seed,
		WithBaseline: true,
		TrackTruth:   true,
	})
	if err != nil {
		return DetectionResult{}, err
	}

	// Each method drives a budgeted scanner over the same stable
	// candidate order (the operational pattern internal/detect supports).
	protoDet, err := detect.New(detect.Config{Threshold: res.Threshold})
	if err != nil {
		return DetectionResult{}, err
	}
	protoScan, err := detect.NewScanner(protoDet, protoBudget)
	if err != nil {
		return DetectionResult{}, err
	}
	baseDet, err := detect.New(detect.Config{Threshold: res.Threshold})
	if err != nil {
		return DetectionResult{}, err
	}
	baseScan, err := detect.NewScanner(baseDet, baseBudget)
	if err != nil {
		return DetectionResult{}, err
	}

	var scanErr error
	sim.OnBoundary = func(kNext int64) error {
		if kNext <= attackEpoch {
			return nil
		}
		truth, err := sim.TruthAt(0, kNext)
		if err != nil {
			return err
		}
		if res.TruthEpoch == 0 && float64(truth[victim]) >= res.Threshold {
			res.TruthEpoch = kNext
		}
		candidates := make([]uint64, 0, len(truth))
		for f := range truth {
			candidates = append(candidates, f)
		}
		sort.Slice(candidates, func(i, j int) bool { return candidates[i] < candidates[j] })
		if res.ProtoEpoch == 0 {
			for _, ev := range protoScan.Scan(kNext, candidates, func(f uint64) float64 {
				return sim.QueryProtocol(0, f)
			}) {
				if ev.Kind == detect.Raise && ev.Flow == victim {
					res.ProtoEpoch = kNext
				}
			}
		}
		if res.BaseEpoch == 0 {
			for _, ev := range baseScan.Scan(kNext, candidates, func(f uint64) float64 {
				v, err := sim.QueryBaseline(0, f)
				if err != nil && scanErr == nil {
					scanErr = err
				}
				return v
			}) {
				if ev.Kind == detect.Raise && ev.Flow == victim {
					res.BaseEpoch = kNext
				}
			}
		}
		return scanErr
	}

	background, err := trace.NewGenerator(cfg.Trace)
	if err != nil {
		return DetectionResult{}, err
	}
	attack, err := trace.NewBurst(trace.BurstConfig{
		Flow:          victim,
		Start:         attackStart,
		End:           attackEnd,
		Packets:       perEpoch * attackEpochs,
		Points:        cfg.Trace.Points,
		FreshElements: true,
		ElemBase:      1 << 40,
		Seed:          cfg.Seed,
	})
	if err != nil {
		return DetectionResult{}, err
	}
	if err := sim.Run(trace.Merge(background, attack)); err != nil {
		return DetectionResult{}, err
	}
	if res.TruthEpoch == 0 {
		return DetectionResult{}, fmt.Errorf("experiments: attack never crossed the threshold; trace too short")
	}
	return res, nil
}

// FormatDetection renders the detection-latency experiment as text.
func FormatDetection(res DetectionResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — DDoS onset at epoch %d, alarm threshold %.0f distinct sources\n",
		res.Label, res.AttackEpoch, res.Threshold)
	fmt.Fprintf(&b, "per-epoch scan budget %v: three-sketch scans %d flows/epoch, VATE networkwide scans %d\n",
		res.QueryBudget, res.ProtoQueriesPerEpoch, res.BaseQueriesPerEpoch)
	proto, base := res.LatencyEpochs()
	fmt.Fprintf(&b, "%-34s %s\n", "truth crosses threshold at epoch:", epochStr(res.TruthEpoch))
	fmt.Fprintf(&b, "%-34s %s (latency %s epochs)\n", "three-sketch alarm at epoch:", epochStr(res.ProtoEpoch), latencyStr(proto))
	fmt.Fprintf(&b, "%-34s %s (latency %s epochs)\n", "VATE baseline alarm at epoch:", epochStr(res.BaseEpoch), latencyStr(base))
	return b.String()
}

func epochStr(e int64) string {
	if e == 0 {
		return "never"
	}
	return fmt.Sprintf("%d", e)
}

func latencyStr(l int64) string {
	if l < 0 {
		return "∞"
	}
	return fmt.Sprintf("%d", l)
}

func maxDuration(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

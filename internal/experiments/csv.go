package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// CSV export: every figure's regenerated data can be written as plain CSV
// files (one per series component) so the plots can be redrawn with any
// tool. Files land in a directory as <label>_<series>_<component>.csv.

// WriteAccuracyCSV writes an accuracy figure's scatter and bucket series.
func WriteAccuracyCSV(dir string, res AccuracyResult) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, s := range res.Series {
		scatter, err := createCSV(dir, res.Label, s.Name, "scatter")
		if err != nil {
			return err
		}
		fmt.Fprintln(scatter, "truth,estimate")
		for _, p := range s.Scatter {
			fmt.Fprintf(scatter, "%g,%g\n", p.Truth, p.Est)
		}
		if err := scatter.Close(); err != nil {
			return err
		}

		buckets, err := createCSV(dir, res.Label, s.Name, "buckets")
		if err != nil {
			return err
		}
		fmt.Fprintln(buckets, "lo,hi,count,rel_bias,rel_stderr")
		for _, b := range s.Buckets {
			fmt.Fprintf(buckets, "%g,%g,%d,%g,%g\n", b.Lo, b.Hi, b.Count, b.MeanRelBias, b.RelStdErr)
		}
		if err := buckets.Close(); err != nil {
			return err
		}
	}
	return nil
}

// WriteSweepCSV writes a Figure 13 subplot's series.
func WriteSweepCSV(dir string, res SweepResult) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := createCSV(dir, res.Label, res.Kind, "sweep")
	if err != nil {
		return err
	}
	fmt.Fprintln(f, "n,protocol_avg_abs_err,baseline_avg_abs_err")
	for _, p := range res.Points {
		fmt.Fprintf(f, "%d,%g,%g\n", p.N, p.ProtocolAvgAbsErr, p.BaselineAvgAbsErr)
	}
	return f.Close()
}

func createCSV(dir, label, series, component string) (io.WriteCloser, error) {
	name := fmt.Sprintf("%s_%s_%s.csv", slug(label), slug(series), slug(component))
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return nil, fmt.Errorf("experiments: create csv: %w", err)
	}
	return f, nil
}

// slug converts a label to a filesystem-friendly token.
func slug(s string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(s) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		case r == ' ', r == '.', r == '(', r == ')', r == '/', r == '-':
			// collapse separators to single underscores
			if b.Len() > 0 && !strings.HasSuffix(b.String(), "_") {
				b.WriteByte('_')
			}
		}
	}
	return strings.TrimSuffix(b.String(), "_")
}

package experiments

import (
	"math"

	"repro/internal/hll"
	"repro/internal/metrics"
	"repro/internal/rskt"
	"repro/internal/vhll"
	"repro/internal/xhash"
)

// RunEstimatorAblation compares the single-flow estimators the rSkt2
// framework can plug in — HLL, bitmap and FM — plus the register-sharing
// vHLL sketch of the paper's reference [18], all at the same total memory,
// justifying the paper's choice of rSkt2(HLL) for the three-sketch design.
// One sketch of each kind records the same synthetic multiset stream.
func RunEstimatorAblation(cfg Config, memMb int, flows, maxSpread int) (AblationResult, error) {
	if flows <= 0 {
		flows = 2000
	}
	if maxSpread <= 0 {
		maxSpread = 3000
	}
	memBits := cfg.scaledMem(memMb)
	seed := cfg.Seed

	hllSk := rskt.New(rskt.Params{
		W: rskt.WidthForMemory(memBits, hll.DefaultM), M: hll.DefaultM, Seed: seed,
	})
	bmSk, err := rskt.NewBitmapVariant(rskt.Params{
		W: rskt.BitmapWidthForMemory(memBits, 2048), M: 2048, Seed: seed,
	})
	if err != nil {
		return AblationResult{}, err
	}
	fmSk, err := rskt.NewFMVariant(rskt.Params{
		W: rskt.FMWidthForMemory(memBits, 64), M: 64, Seed: seed,
	})
	if err != nil {
		return AblationResult{}, err
	}
	vhllSk, err := vhll.New(vhll.Params{
		PhysicalRegisters: vhll.PhysicalForMemory(memBits),
		VirtualRegisters:  vhll.DefaultVirtualRegisters,
		Seed:              seed,
	})
	if err != nil {
		return AblationResult{}, err
	}

	// Zipf-ish spreads: flow f has spread ~ maxSpread/(rank+1)^0.7.
	truth := make(map[uint64]int, flows)
	for rank := 0; rank < flows; rank++ {
		f := xhash.Mix64(uint64(rank) ^ seed)
		spread := int(float64(maxSpread) / math.Pow(float64(rank+1), 0.7))
		if spread < 1 {
			spread = 1
		}
		truth[f] = spread
		for e := 0; e < spread; e++ {
			elem := uint64(e)
			hllSk.Record(f, elem)
			bmSk.Record(f, elem)
			fmSk.Record(f, elem)
			vhllSk.Record(f, elem)
			// A duplicate stream stresses distinct counting.
			if e%3 == 0 {
				hllSk.Record(f, elem)
				bmSk.Record(f, elem)
				fmSk.Record(f, elem)
				vhllSk.Record(f, elem)
			}
		}
	}

	score := func(name string, est func(uint64) float64, memBits int) AblationVariant {
		var samples []metrics.Sample
		for f, want := range truth {
			samples = append(samples, metrics.Sample{Truth: float64(want), Est: est(f)})
		}
		return AblationVariant{
			Name:      name,
			Summary:   metrics.Summarize(samples),
			MemoryMbE: float64(memBits) / float64(Mb),
		}
	}
	return AblationResult{
		Label: "ablation-estimator",
		Variants: []AblationVariant{
			score("rSkt2(HLL), m=128", hllSk.Estimate, hllSk.MemoryBits()),
			score("rSkt2(bitmap), 2048-bit bitmaps", bmSk.Estimate, bmSk.MemoryBits()),
			score("rSkt2(FM), 64 FM bitmaps", fmSk.Estimate, fmSk.MemoryBits()),
			score("vHLL (register sharing, ref. [18])", vhllSk.Estimate, vhllSk.MemoryBits()),
		},
	}, nil
}

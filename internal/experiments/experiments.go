// Package experiments regenerates every table and figure of the paper's
// evaluation (Section VII) on the synthetic CAIDA-like trace.
//
// # Scaling
//
// The paper replays a 30-minute CAIDA slice (1.02 B packets, 3.3 M
// destination flows) against 2-32 Mb sketches. This repository replays a
// synthetic trace with the same shape but ~27x fewer flows, and divides
// the paper's memory labels by MemScaleDiv (default 32) so the per-flow
// sketch load — the quantity accuracy actually depends on — stays in the
// paper's regime. Labels in results keep the paper's nominal "2Mb"/"8Mb"
// names.
//
// Queries are issued at epoch boundaries (every SampleEvery-th warm
// boundary) over a deterministic sample of the flows active in the window,
// and scored against the exact statistics of the approximate networkwide
// T-stream, exactly as Section VII-A defines.
package experiments

import (
	"time"

	"repro/internal/trace"
	"repro/internal/window"
	"repro/internal/xhash"
)

// Mb is one megabit, the paper's memory unit.
const Mb = 1 << 20

// Config holds the workload-level knobs shared by all experiments.
type Config struct {
	// Trace is the synthetic workload.
	Trace trace.Config
	// Window is the T-query model (paper default: T = 1 min, n = 10).
	Window window.Config
	// MemScaleDiv divides the paper's Mb labels (see package comment).
	MemScaleDiv int
	// SampleEvery scores every k-th warm epoch boundary.
	SampleEvery int
	// FlowSampleMod deterministically samples one in FlowSampleMod of the
	// window's flows per scored boundary (1 = all flows).
	FlowSampleMod int
	// Seed is the cluster-wide hash seed.
	Seed uint64
	// Workers is the largest pipeline count of the throughput experiment's
	// per-core scaling curve, measured at 1, 2, 4, ... up to Workers
	// (0 = 8, the default curve).
	Workers int
	// CSVDir, when non-empty, makes the accuracy and sweep runners also
	// write their series as CSV files into this directory.
	CSVDir string
}

// DefaultConfig returns the full-scale experiment configuration.
func DefaultConfig() Config {
	return Config{
		Trace:         trace.Default(),
		Window:        window.Config{T: time.Minute, N: 10},
		MemScaleDiv:   32,
		SampleEvery:   10,
		FlowSampleMod: 7,
		Seed:          42,
	}
}

// QuickConfig returns a reduced configuration for tests and smoke runs:
// same shape, ~10x less work.
func QuickConfig() Config {
	cfg := DefaultConfig()
	cfg.Trace.Packets = 300_000
	cfg.Trace.Flows = 20_000
	cfg.Trace.Duration = 6 * time.Minute
	cfg.SampleEvery = 10
	cfg.FlowSampleMod = 5
	return cfg
}

// scaledMem converts a paper memory label in Mb to this run's bit budget.
func (c Config) scaledMem(paperMb int) int {
	div := c.MemScaleDiv
	if div < 1 {
		div = 1
	}
	bits := paperMb * Mb / div
	if bits < 1 {
		bits = 1
	}
	return bits
}

// sampleFlow reports whether flow f is in the deterministic query sample.
func (c Config) sampleFlow(f uint64) bool {
	if c.FlowSampleMod <= 1 {
		return true
	}
	return xhash.Hash64(f, c.Seed^0xf10f)%uint64(c.FlowSampleMod) == 0
}

package experiments

import (
	"fmt"
	"strings"
)

// FormatAccuracy renders an accuracy figure's regenerated data as text:
// the overall metric row per method plus the bias/stderr distribution
// along the actual value.
func FormatAccuracy(res AccuracyResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — query point v%d, memory %s (paper labels), %d boundaries scored\n",
		res.Label, res.QueryPoint, formatMemLabels(res.MemoryMb), res.Boundaries)
	fmt.Fprintf(&b, "%-28s %10s %12s %12s %8s\n", "method", "avg|err|", "rel bias", "rel stderr", "flows")
	for _, s := range res.Series {
		fmt.Fprintf(&b, "%-28s %10.2f %+12.4f %12.4f %8d\n",
			s.Name, s.Summary.AvgAbsErr, s.Summary.MeanRelBias, s.Summary.RelStdErr, s.Summary.Count)
	}
	for _, s := range res.Series {
		if len(s.Buckets) == 0 {
			continue
		}
		fmt.Fprintf(&b, "\n%s by actual value:\n", s.Name)
		fmt.Fprintf(&b, "  %-22s %8s %12s %12s\n", "actual range", "flows", "rel bias", "rel stderr")
		for _, bk := range s.Buckets {
			fmt.Fprintf(&b, "  [%8.1f, %8.1f) %8d %+12.4f %12.4f\n",
				bk.Lo, bk.Hi, bk.Count, bk.MeanRelBias, bk.RelStdErr)
		}
	}
	return b.String()
}

// FormatSweep renders a Figure 13 subplot as text.
func FormatSweep(res SweepResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — avg absolute error vs n (%s, %dMb paper label)\n",
		res.Label, res.Kind, res.MemoryMb)
	proto, base := "two-sketch", "Sliding Sketch"
	if res.Kind == "spread" {
		proto, base = "three-sketch", "VATE"
	}
	fmt.Fprintf(&b, "%6s %16s %16s %12s\n", "n", proto, base, "reduction")
	for _, p := range res.Points {
		red := 0.0
		if p.BaselineAvgAbsErr > 0 {
			red = 100 * (1 - p.ProtocolAvgAbsErr/p.BaselineAvgAbsErr)
		}
		fmt.Fprintf(&b, "%6d %16.2f %16.2f %11.2f%%\n",
			p.N, p.ProtocolAvgAbsErr, p.BaselineAvgAbsErr, red)
	}
	return b.String()
}

// FormatOverhead renders Table I as text.
func FormatOverhead(res OverheadResult) string {
	var b strings.Builder
	b.WriteString("Table I — online query overhead (us per networkwide T-query)\n")
	fmt.Fprintf(&b, "%-14s %-16s %-14s %-14s\n", "Two-Sketch", "Sliding Sketch", "Three-Sketch", "VATE")
	fmt.Fprintf(&b, "%-14.3f %-16.1f %-14.3f %-14.1f\n",
		float64(res.TwoSketch.Nanoseconds())/1e3,
		float64(res.SlidingSketch.Nanoseconds())/1e3,
		float64(res.ThreeSketch.Nanoseconds())/1e3,
		float64(res.VATE.Nanoseconds())/1e3)
	return b.String()
}

// FormatThroughput renders Table II as text.
func FormatThroughput(res ThroughputResult) string {
	var b strings.Builder
	b.WriteString("Table II — throughput (10^6 packets per second)\n")
	fmt.Fprintf(&b, "%-14s %-16s %-14s %-14s\n", "Two-Sketch", "Sliding Sketch", "Three-Sketch", "VATE")
	fmt.Fprintf(&b, "%-14.2f %-16.2f %-14.2f %-14.2f\n",
		res.TwoSketchPPS/1e6, res.SlidingSketchPPS/1e6, res.ThreeSketchPPS/1e6, res.VATEPPS/1e6)
	if res.Workers > 0 {
		fmt.Fprintf(&b, "sharded ingest (%d workers, batched): Two-Sketch %.2f, Three-Sketch %.2f\n",
			res.Workers, res.TwoSketchParallelPPS/1e6, res.ThreeSketchParallelPPS/1e6)
	}
	for _, row := range res.PipelineScaling {
		basis := "CPU-projected"
		if !row.CPUProjected {
			basis = "wall clock"
		}
		fmt.Fprintf(&b, "pipeline ingest x%d (%s): Two-Sketch %.2f, Three-Sketch %.2f\n",
			row.Workers, basis, row.TwoSketchPPS/1e6, row.ThreeSketchPPS/1e6)
	}
	return b.String()
}

// FormatAblation renders an ablation comparison as text.
func FormatAblation(res AblationResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", res.Label)
	fmt.Fprintf(&b, "%-44s %10s %12s %12s %10s\n", "variant", "avg|err|", "rel bias", "rel stderr", "mem (Mb)")
	for _, v := range res.Variants {
		fmt.Fprintf(&b, "%-44s %10.2f %+12.4f %12.4f %10.1f\n",
			v.Name, v.Summary.AvgAbsErr, v.Summary.MeanRelBias, v.Summary.RelStdErr, v.MemoryMbE)
	}
	return b.String()
}

func formatMemLabels(mb []int) string {
	parts := make([]string, len(mb))
	for i, v := range mb {
		parts[i] = fmt.Sprintf("%dMb", v)
	}
	return strings.Join(parts, "/")
}

package experiments

import (
	"fmt"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/countmin"
	"repro/internal/hll"
	"repro/internal/rskt"
	"repro/internal/slidingsketch"
	"repro/internal/transport"
	"repro/internal/vate"
)

// OverheadResult is the regenerated Table I: the time to answer one
// approximate real-time networkwide T-query with each method. The paper's
// designs answer from local memory; the baselines pay a round trip to each
// peer (here: real TCP over loopback, standing in for the paper's LAN).
type OverheadResult struct {
	TwoSketch     time.Duration
	SlidingSketch time.Duration
	ThreeSketch   time.Duration
	VATE          time.Duration
}

// overheadQueries is the number of queries each method is timed over.
const overheadQueries = 2000

// RunQueryOverhead measures Table I. Sketches are pre-filled with traffic
// so queries touch realistic state; baseline peers are separate goroutines
// behind real sockets, as in the paper's deployment.
func RunQueryOverhead(cfg Config) (OverheadResult, error) {
	var out OverheadResult
	seed := cfg.Seed
	mem := cfg.scaledMem(2)
	n := cfg.Window.N

	// Two-sketch design: a local CountMin query.
	sizePt, err := core.NewSizePoint(0, countmin.Params{
		D:    countmin.DefaultDepth,
		W:    countmin.WidthForMemory(mem, countmin.DefaultDepth),
		Seed: seed,
	}, core.SizeModeCumulative)
	if err != nil {
		return out, err
	}
	for f := uint64(0); f < 50_000; f++ {
		sizePt.Record(f % 10_000)
	}
	out.TwoSketch = timeQueries(func(f uint64) {
		_ = sizePt.Query(f)
	})

	// Three-sketch design: a local rSkt2(HLL) query.
	spreadPt, err := core.NewSpreadPoint(0, rskt.Params{
		W: rskt.WidthForMemory(mem, hll.DefaultM), M: hll.DefaultM, Seed: seed,
	})
	if err != nil {
		return out, err
	}
	for f := uint64(0); f < 5_000; f++ {
		for e := uint64(0); e < 10; e++ {
			spreadPt.Record(f, e)
		}
	}
	out.ThreeSketch = timeQueries(func(f uint64) {
		_ = spreadPt.Query(f)
	})

	// Sliding Sketch networkwide: local + 2 peers over TCP.
	mkSliding := func() *slidingsketch.Sketch {
		s := slidingsketch.New(slidingsketch.Params{
			D:     slidingsketch.DefaultDepth,
			W:     slidingsketch.WidthForMemory(mem, slidingsketch.DefaultDepth, n),
			Zones: n,
			Seed:  seed,
		})
		for f := uint64(0); f < 50_000; f++ {
			s.Record(f % 10_000)
		}
		return s
	}
	slidingLocal := mkSliding()
	var slidingServers []*transport.QueryServer
	var slidingPeers []baseline.SizePeer
	for i := 0; i < 2; i++ {
		peer := mkSliding()
		srv, err := transport.ServeQueries("127.0.0.1:0", func(f uint64) float64 {
			return float64(peer.Estimate(f))
		})
		if err != nil {
			return out, err
		}
		defer srv.Close()
		slidingServers = append(slidingServers, srv)
		qc, err := transport.DialQuery(srv.Addr().String())
		if err != nil {
			return out, err
		}
		defer qc.Close()
		slidingPeers = append(slidingPeers, qc)
	}
	_ = slidingServers
	slidingNW := &baseline.NetworkwideSize{Local: slidingLocal, Peers: slidingPeers}
	var qerr error
	out.SlidingSketch = timeQueries(func(f uint64) {
		if _, err := slidingNW.Query(f); err != nil && qerr == nil {
			qerr = err
		}
	})
	if qerr != nil {
		return out, fmt.Errorf("experiments: sliding sketch networkwide query: %w", qerr)
	}

	// VATE networkwide: local + 2 peers over TCP.
	mkVate := func() *vate.Sketch {
		s := vate.New(vate.Params{
			VirtualBits:   vate.DefaultVirtualBits,
			PhysicalCells: vate.CellsForMemory(mem, n),
			WindowN:       n,
			Seed:          seed,
		})
		for f := uint64(0); f < 5_000; f++ {
			for e := uint64(0); e < 10; e++ {
				s.Record(f, e)
			}
		}
		return s
	}
	vateLocal := mkVate()
	var vatePeers []baseline.SpreadPeer
	for i := 0; i < 2; i++ {
		peer := mkVate()
		srv, err := transport.ServeQueries("127.0.0.1:0", peer.Estimate)
		if err != nil {
			return out, err
		}
		defer srv.Close()
		qc, err := transport.DialQuery(srv.Addr().String())
		if err != nil {
			return out, err
		}
		defer qc.Close()
		vatePeers = append(vatePeers, qc)
	}
	vateNW := &baseline.NetworkwideSpread{Local: vateLocal, Peers: vatePeers}
	out.VATE = timeQueries(func(f uint64) {
		if _, err := vateNW.Query(f); err != nil && qerr == nil {
			qerr = err
		}
	})
	if qerr != nil {
		return out, fmt.Errorf("experiments: VATE networkwide query: %w", qerr)
	}
	return out, nil
}

// timeQueries returns the mean wall time of one query.
func timeQueries(query func(f uint64)) time.Duration {
	start := time.Now()
	for i := 0; i < overheadQueries; i++ {
		query(uint64(i) % 10_000)
	}
	return time.Since(start) / overheadQueries
}

package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Experiment regenerates one of the paper's tables or figures and returns
// a textual report.
type Experiment struct {
	// ID is the handle used by `tqbench -exp`.
	ID string
	// Description says what the experiment reproduces.
	Description string
	// Run executes the experiment.
	Run func(cfg Config) (string, error)
}

// Registry lists every reproducible experiment, keyed by ID.
func Registry() map[string]Experiment {
	exps := []Experiment{
		{
			ID:          "fig3",
			Description: "Fig. 3: spread accuracy, uniform 2Mb, three-sketch vs VATE",
			Run: func(cfg Config) (string, error) {
				res, err := RunSpreadAccuracy(cfg, "Fig. 3", []int{2, 2, 2}, 0, false)
				if err != nil {
					return "", err
				}
				return FormatAccuracy(res), nil
			},
		},
		{
			ID:          "fig4",
			Description: "Fig. 4: spread accuracy, uniform 8Mb, three-sketch vs VATE",
			Run: func(cfg Config) (string, error) {
				res, err := RunSpreadAccuracy(cfg, "Fig. 4", []int{8, 8, 8}, 0, false)
				if err != nil {
					return "", err
				}
				return FormatAccuracy(res), nil
			},
		},
		{
			ID:          "fig5",
			Description: "Fig. 5: spread accuracy under diversity 2/4/8Mb at v1",
			Run: func(cfg Config) (string, error) {
				res, err := RunSpreadAccuracy(cfg, "Fig. 5", []int{2, 4, 8}, 1, false)
				if err != nil {
					return "", err
				}
				return FormatAccuracy(res), nil
			},
		},
		{
			ID:          "fig6",
			Description: "Fig. 6: spread accuracy under diversity 8/16/32Mb at v1",
			Run: func(cfg Config) (string, error) {
				res, err := RunSpreadAccuracy(cfg, "Fig. 6", []int{8, 16, 32}, 1, false)
				if err != nil {
					return "", err
				}
				return FormatAccuracy(res), nil
			},
		},
		{
			ID:          "fig7",
			Description: "Fig. 7: spread accuracy of three-sketch at v0/v2 under both diversity settings",
			Run: func(cfg Config) (string, error) {
				var b strings.Builder
				for _, sub := range []struct {
					tag   string
					mem   []int
					point int
				}{
					{tag: "Fig. 7(a)", mem: []int{2, 4, 8}, point: 0},
					{tag: "Fig. 7(b)", mem: []int{2, 4, 8}, point: 2},
					{tag: "Fig. 7(c)", mem: []int{8, 16, 32}, point: 0},
					{tag: "Fig. 7(d)", mem: []int{8, 16, 32}, point: 2},
				} {
					res, err := RunSpreadAccuracy(cfg, sub.tag, sub.mem, sub.point, false)
					if err != nil {
						return "", err
					}
					b.WriteString(FormatAccuracy(res))
					b.WriteString("\n")
				}
				return b.String(), nil
			},
		},
		{
			ID:          "fig8",
			Description: "Fig. 8: size accuracy, uniform 2Mb, two-sketch vs Sliding Sketch",
			Run: func(cfg Config) (string, error) {
				res, err := RunSizeAccuracy(cfg, "Fig. 8", []int{2, 2, 2}, 0, false)
				if err != nil {
					return "", err
				}
				return FormatAccuracy(res), nil
			},
		},
		{
			ID:          "fig9",
			Description: "Fig. 9: size accuracy, uniform 8Mb, two-sketch vs Sliding Sketch",
			Run: func(cfg Config) (string, error) {
				res, err := RunSizeAccuracy(cfg, "Fig. 9", []int{8, 8, 8}, 0, false)
				if err != nil {
					return "", err
				}
				return FormatAccuracy(res), nil
			},
		},
		{
			ID:          "fig10",
			Description: "Fig. 10: size accuracy under diversity 2/4/8Mb at v1",
			Run: func(cfg Config) (string, error) {
				res, err := RunSizeAccuracy(cfg, "Fig. 10", []int{2, 4, 8}, 1, false)
				if err != nil {
					return "", err
				}
				return FormatAccuracy(res), nil
			},
		},
		{
			ID:          "fig11",
			Description: "Fig. 11: size accuracy under diversity 8/16/32Mb at v1",
			Run: func(cfg Config) (string, error) {
				res, err := RunSizeAccuracy(cfg, "Fig. 11", []int{8, 16, 32}, 1, false)
				if err != nil {
					return "", err
				}
				return FormatAccuracy(res), nil
			},
		},
		{
			ID:          "fig12",
			Description: "Fig. 12: size accuracy of two-sketch at v0/v2 under both diversity settings",
			Run: func(cfg Config) (string, error) {
				var b strings.Builder
				for _, sub := range []struct {
					tag   string
					mem   []int
					point int
				}{
					{tag: "Fig. 12(a)", mem: []int{2, 4, 8}, point: 0},
					{tag: "Fig. 12(b)", mem: []int{2, 4, 8}, point: 2},
					{tag: "Fig. 12(c)", mem: []int{8, 16, 32}, point: 0},
					{tag: "Fig. 12(d)", mem: []int{8, 16, 32}, point: 2},
				} {
					res, err := RunSizeAccuracy(cfg, sub.tag, sub.mem, sub.point, false)
					if err != nil {
						return "", err
					}
					b.WriteString(FormatAccuracy(res))
					b.WriteString("\n")
				}
				return b.String(), nil
			},
		},
		{
			ID:          "fig13a",
			Description: "Fig. 13(a): avg abs error vs n, size, 2Mb",
			Run: func(cfg Config) (string, error) {
				res, err := RunEpochSweep(cfg, "Fig. 13(a)", "size", 2, nil)
				if err != nil {
					return "", err
				}
				return FormatSweep(res), nil
			},
		},
		{
			ID:          "fig13b",
			Description: "Fig. 13(b): avg abs error vs n, size, 8Mb",
			Run: func(cfg Config) (string, error) {
				res, err := RunEpochSweep(cfg, "Fig. 13(b)", "size", 8, nil)
				if err != nil {
					return "", err
				}
				return FormatSweep(res), nil
			},
		},
		{
			ID:          "fig13c",
			Description: "Fig. 13(c): avg abs error vs n, spread, 2Mb",
			Run: func(cfg Config) (string, error) {
				res, err := RunEpochSweep(cfg, "Fig. 13(c)", "spread", 2, nil)
				if err != nil {
					return "", err
				}
				return FormatSweep(res), nil
			},
		},
		{
			ID:          "fig13d",
			Description: "Fig. 13(d): avg abs error vs n, spread, 8Mb",
			Run: func(cfg Config) (string, error) {
				res, err := RunEpochSweep(cfg, "Fig. 13(d)", "spread", 8, nil)
				if err != nil {
					return "", err
				}
				return FormatSweep(res), nil
			},
		},
		{
			ID:          "table1",
			Description: "Table I: online query overhead of all four methods",
			Run: func(cfg Config) (string, error) {
				res, err := RunQueryOverhead(cfg)
				if err != nil {
					return "", err
				}
				return FormatOverhead(res), nil
			},
		},
		{
			ID:          "table2",
			Description: "Table II: packet-recording throughput of all four methods",
			Run: func(cfg Config) (string, error) {
				res, err := RunThroughput(cfg)
				if err != nil {
					return "", err
				}
				return FormatThroughput(res), nil
			},
		},
		{
			ID:          "mem-sweep-size",
			Description: "Extension: avg abs error vs per-point memory (size, 1-32Mb)",
			Run: func(cfg Config) (string, error) {
				res, err := RunMemorySweep(cfg, "mem-sweep-size", "size", nil)
				if err != nil {
					return "", err
				}
				return FormatMemSweep(res), nil
			},
		},
		{
			ID:          "mem-sweep-spread",
			Description: "Extension: avg abs error vs per-point memory (spread, 1-32Mb)",
			Run: func(cfg Config) (string, error) {
				res, err := RunMemorySweep(cfg, "mem-sweep-spread", "spread", nil)
				if err != nil {
					return "", err
				}
				return FormatMemSweep(res), nil
			},
		},
		{
			ID:          "detect-latency",
			Description: "DDoS detection latency under a per-epoch query-time budget (consequence of Table I)",
			Run: func(cfg Config) (string, error) {
				res, err := RunDetectionLatency(cfg, 2)
				if err != nil {
					return "", err
				}
				return FormatDetection(res), nil
			},
		},
		{
			ID:          "ablation-enhance",
			Description: "Ablation: the Section IV-D enhancement on vs off (spread, 8Mb)",
			Run: func(cfg Config) (string, error) {
				res, err := RunEnhancementAblation(cfg, 8)
				if err != nil {
					return "", err
				}
				return FormatAblation(res), nil
			},
		},
		{
			ID:          "ablation-upload",
			Description: "Ablation: cumulative-upload recovery vs a third B sketch (size, 2Mb)",
			Run: func(cfg Config) (string, error) {
				res, err := RunUploadModeAblation(cfg, 2)
				if err != nil {
					return "", err
				}
				return FormatAblation(res), nil
			},
		},
		{
			ID:          "ablation-estimator",
			Description: "Ablation: rSkt2 estimator choice HLL vs bitmap vs FM at equal memory",
			Run: func(cfg Config) (string, error) {
				res, err := RunEstimatorAblation(cfg, 2, 0, 0)
				if err != nil {
					return "", err
				}
				return FormatAblation(res), nil
			},
		},
		{
			ID:          "ablation-core-sketch",
			Description: "Ablation: full protocol with rSkt2(HLL) vs vHLL epoch sketches at equal memory (2Mb)",
			Run: func(cfg Config) (string, error) {
				res, err := RunCoreSketchAblation(cfg, 2)
				if err != nil {
					return "", err
				}
				return FormatAblation(res), nil
			},
		},
		{
			ID:          "ablation-m",
			Description: "Ablation: HLL register count m at fixed memory (spread, 2Mb)",
			Run: func(cfg Config) (string, error) {
				res, err := RunRegisterCountAblation(cfg, 2, nil)
				if err != nil {
					return "", err
				}
				return FormatAblation(res), nil
			},
		},
	}
	out := make(map[string]Experiment, len(exps))
	for _, e := range exps {
		out[e.ID] = e
	}
	return out
}

// IDs returns the registry's experiment ids in stable order.
func IDs() []string {
	reg := Registry()
	ids := make([]string, 0, len(reg))
	for id := range reg {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes one experiment by id.
func Run(cfg Config, id string) (string, error) {
	exp, ok := Registry()[id]
	if !ok {
		return "", fmt.Errorf("experiments: unknown experiment %q (known: %s)",
			id, strings.Join(IDs(), ", "))
	}
	return exp.Run(cfg)
}

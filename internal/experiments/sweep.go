package experiments

import (
	"fmt"

	"repro/internal/window"
)

// SweepPoint is one x-axis value of Figure 13.
type SweepPoint struct {
	// N is the epochs-per-window value (epoch length h = T/N).
	N int
	// ProtocolAvgAbsErr and BaselineAvgAbsErr are the y-values.
	ProtocolAvgAbsErr float64
	BaselineAvgAbsErr float64
}

// SweepResult is the regenerated content of one Figure 13 subplot.
type SweepResult struct {
	Label    string
	Kind     string // "size" or "spread"
	MemoryMb int
	Points   []SweepPoint
}

// DefaultSweepNs are the n values of Figure 13 that divide the 1-minute
// window evenly (the paper sweeps 5..60).
var DefaultSweepNs = []int{5, 6, 10, 12, 15, 20, 30, 60}

// RunEpochSweep regenerates one Figure 13 subplot: average absolute error
// of the design and its baseline as the window is split into more, shorter
// epochs, at a fixed uniform memory.
func RunEpochSweep(cfg Config, label, kind string, memMb int, ns []int) (SweepResult, error) {
	if len(ns) == 0 {
		ns = DefaultSweepNs
	}
	out := SweepResult{Label: label, Kind: kind, MemoryMb: memMb}
	for _, n := range ns {
		runCfg := cfg
		runCfg.Window = window.Config{T: cfg.Window.T, N: n}
		if runCfg.Window.T.Nanoseconds()%int64(n) != 0 {
			return SweepResult{}, fmt.Errorf("experiments: n=%d does not divide T=%v", n, cfg.Window.T)
		}
		// Keep roughly the same number of scored boundaries per run:
		// sample once per window's worth of epochs.
		runCfg.SampleEvery = n
		// The sweep writes one consolidated CSV itself; suppress the
		// per-n accuracy CSVs (they would overwrite each other).
		runCfg.CSVDir = ""
		mem := []int{memMb, memMb, memMb}
		var (
			protoErr, baseErr float64
		)
		switch kind {
		case "size":
			res, err := RunSizeAccuracy(runCfg, label, mem, 0, false)
			if err != nil {
				return SweepResult{}, err
			}
			protoErr, baseErr = res.Series[0].Summary.AvgAbsErr, res.Series[1].Summary.AvgAbsErr
		case "spread":
			res, err := RunSpreadAccuracy(runCfg, label, mem, 0, false)
			if err != nil {
				return SweepResult{}, err
			}
			protoErr, baseErr = res.Series[0].Summary.AvgAbsErr, res.Series[1].Summary.AvgAbsErr
		default:
			return SweepResult{}, fmt.Errorf("experiments: unknown sweep kind %q", kind)
		}
		out.Points = append(out.Points, SweepPoint{
			N:                 n,
			ProtocolAvgAbsErr: protoErr,
			BaselineAvgAbsErr: baseErr,
		})
	}
	if cfg.CSVDir != "" {
		if err := WriteSweepCSV(cfg.CSVDir, out); err != nil {
			return SweepResult{}, err
		}
	}
	return out, nil
}

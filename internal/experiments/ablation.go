package experiments

import (
	"strconv"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/window"
)

// AblationResult compares named variants of one design choice on the same
// workload, by average absolute error and (where it differs) memory cost.
type AblationResult struct {
	Label    string
	Variants []AblationVariant
}

// AblationVariant is one arm of an ablation.
type AblationVariant struct {
	Name      string
	Summary   metrics.Summary
	MemoryMbE float64 // effective per-point sketch memory in paper Mb labels
}

// RunEnhancementAblation quantifies the Section IV-D enhancement: the same
// spread cluster with and without merging the peers' last completed epoch
// into C. Both arms are scored against the *exact* networkwide T-query
// (all points, all completed window epochs) — the target the enhancement
// moves answers toward; the base design inherently misses the peers' last
// epoch of that target.
func RunEnhancementAblation(cfg Config, memMb int) (AblationResult, error) {
	out := AblationResult{Label: "ablation-enhance (scored vs the exact networkwide T-query, flows >= 50, n = 5)"}
	// With n = 5 the peers' last completed epoch is a quarter of the
	// window, so its absence is visible above sketch noise; tiny flows
	// are skipped because their relative error is noise-dominated for
	// every variant.
	cfg.Window = window.Config{T: cfg.Window.T, N: 5}
	const minTruth = 50
	memBits := cfg.scaledMem(memMb)
	for _, arm := range []struct {
		name    string
		enhance bool
	}{
		{name: "three-sketch (base, eq. 2)", enhance: false},
		{name: "three-sketch + IV-D enhancement (eq. 10)", enhance: true},
	} {
		sim, err := cluster.NewSpreadSim(cluster.SpreadSimConfig{
			Window:     cfg.Window,
			MemoryBits: []int{memBits, memBits, memBits},
			Seed:       cfg.Seed,
			Enhance:    arm.enhance,
			TrackTruth: true,
		})
		if err != nil {
			return AblationResult{}, err
		}
		col := &collector{name: arm.name}
		sim.OnBoundary = func(kNext int64) error {
			if !cfg.Window.Warm(kNext) || kNext%int64(cfg.SampleEvery) != 0 {
				return nil
			}
			truth, err := sim.TruthExactAt(kNext)
			if err != nil {
				return err
			}
			for f, want := range truth {
				if want >= minTruth && cfg.sampleFlow(f) {
					col.add(float64(want), sim.QueryProtocol(0, f))
				}
			}
			return nil
		}
		gen, err := trace.NewGenerator(cfg.Trace)
		if err != nil {
			return AblationResult{}, err
		}
		if err := sim.Run(gen); err != nil {
			return AblationResult{}, err
		}
		out.Variants = append(out.Variants, AblationVariant{
			Name:      arm.name,
			Summary:   metrics.Summarize(col.samples),
			MemoryMbE: float64(memMb),
		})
	}
	return out, nil
}

// RunUploadModeAblation verifies the two-sketch design's headline saving:
// cumulative uploads with center-side recovery achieve the same accuracy
// as keeping a third per-epoch B sketch, at two thirds the memory.
func RunUploadModeAblation(cfg Config, memMb int) (AblationResult, error) {
	out := AblationResult{Label: "ablation-upload"}
	mem := []int{cfg.scaledMem(memMb), cfg.scaledMem(memMb), cfg.scaledMem(memMb)}
	for _, arm := range []struct {
		name    string
		mode    core.SizeMode
		sketchN float64
	}{
		{name: "cumulative upload (paper, 2 sketches)", mode: core.SizeModeCumulative, sketchN: 2},
		{name: "delta upload (B sketch, 3 sketches)", mode: core.SizeModeDelta, sketchN: 3},
	} {
		sim, err := cluster.NewSizeSim(cluster.SizeSimConfig{
			Window:     cfg.Window,
			MemoryBits: mem,
			Seed:       cfg.Seed,
			Mode:       arm.mode,
			TrackTruth: true,
		})
		if err != nil {
			return AblationResult{}, err
		}
		col := &collector{name: arm.name}
		sim.OnBoundary = func(kNext int64) error {
			if !cfg.Window.Warm(kNext) || kNext%int64(cfg.SampleEvery) != 0 {
				return nil
			}
			truth, err := sim.TruthAt(0, kNext)
			if err != nil {
				return err
			}
			for f, want := range truth {
				if cfg.sampleFlow(f) {
					col.add(float64(want), float64(sim.QueryProtocol(0, f)))
				}
			}
			return nil
		}
		gen, err := trace.NewGenerator(cfg.Trace)
		if err != nil {
			return AblationResult{}, err
		}
		if err := sim.Run(gen); err != nil {
			return AblationResult{}, err
		}
		out.Variants = append(out.Variants, AblationVariant{
			Name:      arm.name,
			Summary:   metrics.Summarize(col.samples),
			MemoryMbE: float64(memMb) * arm.sketchN / 2,
		})
	}
	return out, nil
}

// RunRegisterCountAblation sweeps the per-estimator HLL register count m
// at fixed total memory, justifying the paper's fixed m = 128: too few
// registers hurt per-estimator accuracy, too many leave too few estimator
// columns.
func RunRegisterCountAblation(cfg Config, memMb int, ms []int) (AblationResult, error) {
	if len(ms) == 0 {
		ms = []int{32, 64, 128, 256, 512}
	}
	out := AblationResult{Label: "ablation-m"}
	memBits := cfg.scaledMem(memMb)
	for _, m := range ms {
		sim, err := cluster.NewSpreadSim(cluster.SpreadSimConfig{
			Window:     cfg.Window,
			MemoryBits: []int{memBits, memBits, memBits},
			M:          m,
			Seed:       cfg.Seed,
			TrackTruth: true,
		})
		if err != nil {
			return AblationResult{}, err
		}
		col := &collector{}
		sim.OnBoundary = func(kNext int64) error {
			if !cfg.Window.Warm(kNext) || kNext%int64(cfg.SampleEvery) != 0 {
				return nil
			}
			truth, err := sim.TruthAt(0, kNext)
			if err != nil {
				return err
			}
			for f, want := range truth {
				if cfg.sampleFlow(f) {
					col.add(float64(want), sim.QueryProtocol(0, f))
				}
			}
			return nil
		}
		gen, err := trace.NewGenerator(cfg.Trace)
		if err != nil {
			return AblationResult{}, err
		}
		if err := sim.Run(gen); err != nil {
			return AblationResult{}, err
		}
		out.Variants = append(out.Variants, AblationVariant{
			Name:      "m=" + strconv.Itoa(m),
			Summary:   metrics.Summarize(col.samples),
			MemoryMbE: float64(memMb),
		})
	}
	return out, nil
}

package experiments

import (
	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// RunCoreSketchAblation runs the *full protocol* twice at equal memory —
// once with rSkt2(HLL) as the epoch sketch (the paper's choice) and once
// with vHLL (register sharing, the paper's reference [18]) — and compares
// end-to-end accuracy against the approximate T-stream. This isolates the
// value of rSkt2's per-flow noise cancellation inside the networkwide
// pipeline, where epochs and points are max-merged many times.
func RunCoreSketchAblation(cfg Config, memMb int) (AblationResult, error) {
	out := AblationResult{Label: "ablation-core-sketch (full protocol, equal memory)"}
	memBits := cfg.scaledMem(memMb)
	mem := []int{memBits, memBits, memBits}

	score := func(name string, run func(col *collector) error) error {
		col := &collector{name: name}
		if err := run(col); err != nil {
			return err
		}
		out.Variants = append(out.Variants, AblationVariant{
			Name:      name,
			Summary:   metrics.Summarize(col.samples),
			MemoryMbE: float64(memMb),
		})
		return nil
	}

	collect := func(col *collector, queryAt func(x int, f uint64) float64,
		truthAt func(x int, kNext int64) (map[uint64]int64, error)) func(kNext int64) error {
		return func(kNext int64) error {
			if !cfg.Window.Warm(kNext) || kNext%int64(cfg.SampleEvery) != 0 {
				return nil
			}
			truth, err := truthAt(0, kNext)
			if err != nil {
				return err
			}
			for f, want := range truth {
				if cfg.sampleFlow(f) {
					col.add(float64(want), queryAt(0, f))
				}
			}
			return nil
		}
	}

	if err := score("rSkt2(HLL) epoch sketch (paper)", func(col *collector) error {
		sim, err := cluster.NewSpreadSim(cluster.SpreadSimConfig{
			Window: cfg.Window, MemoryBits: mem, Seed: cfg.Seed, TrackTruth: true,
		})
		if err != nil {
			return err
		}
		sim.OnBoundary = collect(col, sim.QueryProtocol, sim.TruthAt)
		gen, err := trace.NewGenerator(cfg.Trace)
		if err != nil {
			return err
		}
		return sim.Run(gen)
	}); err != nil {
		return AblationResult{}, err
	}

	if err := score("vHLL epoch sketch (register sharing)", func(col *collector) error {
		sim, err := cluster.NewVhllSpreadSim(cluster.SpreadSimConfig{
			Window: cfg.Window, MemoryBits: mem, Seed: cfg.Seed, TrackTruth: true,
		})
		if err != nil {
			return err
		}
		sim.OnBoundary = collect(col, sim.QueryProtocol, sim.TruthAt)
		gen, err := trace.NewGenerator(cfg.Trace)
		if err != nil {
			return err
		}
		return sim.Run(gen)
	}); err != nil {
		return AblationResult{}, err
	}
	return out, nil
}

package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// Series is one method's accuracy curve in a figure.
type Series struct {
	// Name identifies the method ("three-sketch", "VATE", ...).
	Name string
	// Summary aggregates the paper's metrics over all scored flows.
	Summary metrics.Summary
	// Buckets is the relative-bias / relative-std-err distribution along
	// the actual value (the paper's (c)/(d) subfigures).
	Buckets []metrics.Bucket
	// Scatter is a subsample of (truth, estimate) pairs (the paper's
	// (a)/(b) scatter subfigures).
	Scatter []metrics.Sample
}

// AccuracyResult is the regenerated content of one accuracy figure.
type AccuracyResult struct {
	// Label names the paper figure ("Fig. 3", ...).
	Label string
	// QueryPoint is the measurement point the queries were issued at.
	QueryPoint int
	// MemoryMb are the paper's per-point memory labels.
	MemoryMb []int
	// Series holds the protocol's and the baseline's curves.
	Series []Series
	// Boundaries is the number of scored epoch boundaries.
	Boundaries int
}

const maxScatter = 2000

// collector accumulates one method's samples.
type collector struct {
	name    string
	samples []metrics.Sample
}

func (c *collector) add(truth, est float64) {
	c.samples = append(c.samples, metrics.Sample{Truth: truth, Est: est})
}

func (c *collector) series() Series {
	scatter := c.samples
	if len(scatter) > maxScatter {
		stride := len(scatter) / maxScatter
		sub := make([]metrics.Sample, 0, maxScatter)
		for i := 0; i < len(scatter); i += stride {
			sub = append(sub, scatter[i])
		}
		scatter = sub
	}
	return Series{
		Name:    c.name,
		Summary: metrics.Summarize(c.samples),
		Buckets: metrics.BucketByTruth(c.samples, 2),
		Scatter: scatter,
	}
}

// RunSpreadAccuracy regenerates one spread-accuracy figure (Figs. 3-7):
// the three-sketch design vs the VATE baseline, scored at queryPoint, with
// the given per-point paper memory labels.
func RunSpreadAccuracy(cfg Config, label string, memMb []int, queryPoint int, enhance bool) (AccuracyResult, error) {
	memBits := make([]int, len(memMb))
	for i, mb := range memMb {
		memBits[i] = cfg.scaledMem(mb)
	}
	sim, err := cluster.NewSpreadSim(cluster.SpreadSimConfig{
		Window:       cfg.Window,
		MemoryBits:   memBits,
		Seed:         cfg.Seed,
		Enhance:      enhance,
		WithBaseline: true,
		TrackTruth:   true,
	})
	if err != nil {
		return AccuracyResult{}, err
	}
	proto := &collector{name: "three-sketch"}
	base := &collector{name: "VATE"}
	boundaries := 0
	sim.OnBoundary = func(kNext int64) error {
		if !cfg.Window.Warm(kNext) || kNext%int64(cfg.SampleEvery) != 0 {
			return nil
		}
		boundaries++
		truth, err := sim.TruthAt(queryPoint, kNext)
		if err != nil {
			return err
		}
		for f, want := range truth {
			if !cfg.sampleFlow(f) {
				continue
			}
			proto.add(float64(want), sim.QueryProtocol(queryPoint, f))
			b, err := sim.QueryBaseline(queryPoint, f)
			if err != nil {
				return err
			}
			base.add(float64(want), b)
		}
		return nil
	}
	gen, err := trace.NewGenerator(cfg.Trace)
	if err != nil {
		return AccuracyResult{}, err
	}
	if err := sim.Run(gen); err != nil {
		return AccuracyResult{}, err
	}
	if boundaries == 0 {
		return AccuracyResult{}, fmt.Errorf("experiments: %s scored no boundaries (trace too short for the window)", label)
	}
	out := AccuracyResult{
		Label:      label,
		QueryPoint: queryPoint,
		MemoryMb:   memMb,
		Series:     []Series{proto.series(), base.series()},
		Boundaries: boundaries,
	}
	if cfg.CSVDir != "" {
		if err := WriteAccuracyCSV(cfg.CSVDir, out); err != nil {
			return AccuracyResult{}, err
		}
	}
	return out, nil
}

// RunSizeAccuracy regenerates one size-accuracy figure (Figs. 8-12): the
// two-sketch design vs the Sliding Sketch baseline.
func RunSizeAccuracy(cfg Config, label string, memMb []int, queryPoint int, enhance bool) (AccuracyResult, error) {
	memBits := make([]int, len(memMb))
	for i, mb := range memMb {
		memBits[i] = cfg.scaledMem(mb)
	}
	sim, err := cluster.NewSizeSim(cluster.SizeSimConfig{
		Window:       cfg.Window,
		MemoryBits:   memBits,
		Seed:         cfg.Seed,
		Enhance:      enhance,
		WithBaseline: true,
		TrackTruth:   true,
	})
	if err != nil {
		return AccuracyResult{}, err
	}
	proto := &collector{name: "two-sketch"}
	base := &collector{name: "Sliding Sketch"}
	boundaries := 0
	sim.OnBoundary = func(kNext int64) error {
		if !cfg.Window.Warm(kNext) || kNext%int64(cfg.SampleEvery) != 0 {
			return nil
		}
		boundaries++
		truth, err := sim.TruthAt(queryPoint, kNext)
		if err != nil {
			return err
		}
		for f, want := range truth {
			if !cfg.sampleFlow(f) {
				continue
			}
			proto.add(float64(want), float64(sim.QueryProtocol(queryPoint, f)))
			b, err := sim.QueryBaseline(queryPoint, f)
			if err != nil {
				return err
			}
			base.add(float64(want), float64(b))
		}
		return nil
	}
	gen, err := trace.NewGenerator(cfg.Trace)
	if err != nil {
		return AccuracyResult{}, err
	}
	if err := sim.Run(gen); err != nil {
		return AccuracyResult{}, err
	}
	if boundaries == 0 {
		return AccuracyResult{}, fmt.Errorf("experiments: %s scored no boundaries (trace too short for the window)", label)
	}
	out := AccuracyResult{
		Label:      label,
		QueryPoint: queryPoint,
		MemoryMb:   memMb,
		Series:     []Series{proto.series(), base.series()},
		Boundaries: boundaries,
	}
	if cfg.CSVDir != "" {
		if err := WriteAccuracyCSV(cfg.CSVDir, out); err != nil {
			return AccuracyResult{}, err
		}
	}
	return out, nil
}

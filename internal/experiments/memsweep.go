package experiments

import (
	"fmt"
	"strings"
)

// MemSweepPoint is one memory setting's outcome.
type MemSweepPoint struct {
	MemoryMb          int
	ProtocolAvgAbsErr float64
	BaselineAvgAbsErr float64
}

// MemSweepResult is an extension figure the paper implies but does not
// plot: average absolute error of the design and its baseline as the
// uniform per-point memory doubles.
type MemSweepResult struct {
	Label  string
	Kind   string
	Points []MemSweepPoint
}

// DefaultMemSweepMb are the memory labels swept (the paper's evaluation
// touches 2..32 Mb).
var DefaultMemSweepMb = []int{1, 2, 4, 8, 16, 32}

// RunMemorySweep measures MemSweepResult for "size" or "spread".
func RunMemorySweep(cfg Config, label, kind string, mems []int) (MemSweepResult, error) {
	if len(mems) == 0 {
		mems = DefaultMemSweepMb
	}
	out := MemSweepResult{Label: label, Kind: kind}
	for _, mb := range mems {
		mem := []int{mb, mb, mb}
		var protoErr, baseErr float64
		switch kind {
		case "size":
			res, err := RunSizeAccuracy(cfg, label, mem, 0, false)
			if err != nil {
				return MemSweepResult{}, err
			}
			protoErr, baseErr = res.Series[0].Summary.AvgAbsErr, res.Series[1].Summary.AvgAbsErr
		case "spread":
			res, err := RunSpreadAccuracy(cfg, label, mem, 0, false)
			if err != nil {
				return MemSweepResult{}, err
			}
			protoErr, baseErr = res.Series[0].Summary.AvgAbsErr, res.Series[1].Summary.AvgAbsErr
		default:
			return MemSweepResult{}, fmt.Errorf("experiments: unknown mem-sweep kind %q", kind)
		}
		out.Points = append(out.Points, MemSweepPoint{
			MemoryMb:          mb,
			ProtocolAvgAbsErr: protoErr,
			BaselineAvgAbsErr: baseErr,
		})
	}
	return out, nil
}

// FormatMemSweep renders a memory sweep as text.
func FormatMemSweep(res MemSweepResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — avg absolute error vs per-point memory (%s)\n", res.Label, res.Kind)
	proto, base := "two-sketch", "Sliding Sketch"
	if res.Kind == "spread" {
		proto, base = "three-sketch", "VATE"
	}
	fmt.Fprintf(&b, "%8s %16s %16s\n", "mem", proto, base)
	for _, p := range res.Points {
		fmt.Fprintf(&b, "%6dMb %16.2f %16.2f\n", p.MemoryMb, p.ProtocolAvgAbsErr, p.BaselineAvgAbsErr)
	}
	return b.String()
}

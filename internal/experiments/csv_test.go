package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/metrics"
)

func TestSlug(t *testing.T) {
	tests := []struct{ give, want string }{
		{give: "Fig. 3", want: "fig_3"},
		{give: "Fig. 13(a)", want: "fig_13_a"},
		{give: "Sliding Sketch", want: "sliding_sketch"},
		{give: "three-sketch", want: "three_sketch"},
	}
	for _, tt := range tests {
		if got := slug(tt.give); got != tt.want {
			t.Fatalf("slug(%q) = %q, want %q", tt.give, got, tt.want)
		}
	}
}

func TestWriteAccuracyCSV(t *testing.T) {
	dir := t.TempDir()
	res := AccuracyResult{
		Label: "Fig. 8",
		Series: []Series{
			{
				Name:    "two-sketch",
				Scatter: []metrics.Sample{{Truth: 10, Est: 11}, {Truth: 20, Est: 19}},
				Buckets: []metrics.Bucket{{Lo: 1, Hi: 10, Count: 2, MeanRelBias: 0.05, RelStdErr: 0.1}},
			},
		},
	}
	if err := WriteAccuracyCSV(dir, res); err != nil {
		t.Fatal(err)
	}
	scatter, err := os.ReadFile(filepath.Join(dir, "fig_8_two_sketch_scatter.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(scatter), "10,11") {
		t.Fatalf("scatter csv missing data:\n%s", scatter)
	}
	buckets, err := os.ReadFile(filepath.Join(dir, "fig_8_two_sketch_buckets.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(buckets), "1,10,2,0.05,0.1") {
		t.Fatalf("buckets csv missing data:\n%s", buckets)
	}
}

func TestWriteSweepCSV(t *testing.T) {
	dir := t.TempDir()
	res := SweepResult{
		Label: "Fig. 13(a)",
		Kind:  "size",
		Points: []SweepPoint{
			{N: 5, ProtocolAvgAbsErr: 9.1, BaselineAvgAbsErr: 280},
		},
	}
	if err := WriteSweepCSV(dir, res); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig_13_a_size_sweep.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "5,9.1,280") {
		t.Fatalf("sweep csv missing data:\n%s", data)
	}
}

func TestAccuracyRunWritesCSV(t *testing.T) {
	cfg := testConfig()
	cfg.CSVDir = t.TempDir()
	if _, err := RunSizeAccuracy(cfg, "Fig. CSV", []int{2, 2, 2}, 0, false); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(cfg.CSVDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 { // 2 series x (scatter + buckets)
		t.Fatalf("csv files written = %d, want 4", len(entries))
	}
}

package pcap

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"repro/internal/trace"
)

// pcapBuilder synthesizes classic pcap files for tests.
type pcapBuilder struct {
	buf   bytes.Buffer
	order binary.ByteOrder
	nano  bool
}

func newPcap(order binary.ByteOrder, nano bool, link uint32) *pcapBuilder {
	b := &pcapBuilder{order: order, nano: nano}
	magic := uint32(magicMicroLE)
	if nano {
		magic = magicNanoLE
	}
	// The magic is written in the file's own byte order.
	var gh [24]byte
	order.PutUint32(gh[0:4], magic)
	order.PutUint16(gh[4:6], 2)
	order.PutUint16(gh[6:8], 4)
	order.PutUint32(gh[16:20], 65535)
	order.PutUint32(gh[20:24], link)
	b.buf.Write(gh[:])
	return b
}

func (b *pcapBuilder) record(sec, subsec uint32, frame []byte) {
	var rh [16]byte
	b.order.PutUint32(rh[0:4], sec)
	b.order.PutUint32(rh[4:8], subsec)
	b.order.PutUint32(rh[8:12], uint32(len(frame)))
	b.order.PutUint32(rh[12:16], uint32(len(frame)))
	b.buf.Write(rh[:])
	b.buf.Write(frame)
}

// ether builds an Ethernet frame carrying an IPv4 header.
func etherIPv4(src, dst uint32, vlan bool) []byte {
	var f []byte
	f = append(f, make([]byte, 12)...) // MACs
	if vlan {
		f = append(f, 0x81, 0x00, 0x00, 0x01) // 802.1Q tag
	}
	f = append(f, 0x08, 0x00) // IPv4
	ip := make([]byte, 20)
	ip[0] = 0x45
	binary.BigEndian.PutUint32(ip[12:16], src)
	binary.BigEndian.PutUint32(ip[16:20], dst)
	return append(f, ip...)
}

func TestReadEthernetIPv4(t *testing.T) {
	b := newPcap(binary.LittleEndian, false, linkEthernet)
	b.record(100, 500, etherIPv4(0x0a000001, 0xC0A80001, false))
	b.record(101, 0, etherIPv4(0x0a000002, 0xC0A80001, false))

	r, err := NewReader(bytes.NewReader(b.buf.Bytes()), Config{Points: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	p1, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if p1.TS != 0 {
		t.Fatalf("first packet TS = %d, want 0 (relative)", p1.TS)
	}
	if p1.Flow != 0xC0A80001 || p1.Elem != 0x0a000001 {
		t.Fatalf("flow/elem = %#x/%#x", p1.Flow, p1.Elem)
	}
	if p1.Point < 0 || p1.Point >= 3 {
		t.Fatalf("point = %d", p1.Point)
	}
	p2, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	// 1 second minus 500 us later.
	if want := int64(1e9 - 500e3); p2.TS != want {
		t.Fatalf("second packet TS = %d, want %d", p2.TS, want)
	}
	if _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestFlowBySrc(t *testing.T) {
	b := newPcap(binary.LittleEndian, false, linkEthernet)
	b.record(0, 0, etherIPv4(7, 9, false))
	r, err := NewReader(bytes.NewReader(b.buf.Bytes()), Config{Points: 2, FlowBy: FlowBySrc})
	if err != nil {
		t.Fatal(err)
	}
	p, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if p.Flow != 7 || p.Elem != 9 {
		t.Fatalf("FlowBySrc gave flow/elem = %d/%d", p.Flow, p.Elem)
	}
}

func TestVLANAndNonIPSkipped(t *testing.T) {
	b := newPcap(binary.LittleEndian, false, linkEthernet)
	// ARP frame: skipped.
	arp := append(make([]byte, 12), 0x08, 0x06, 0, 0)
	b.record(0, 0, arp)
	// VLAN-tagged IPv4: parsed.
	b.record(1, 0, etherIPv4(1, 2, true))
	r, err := NewReader(bytes.NewReader(b.buf.Bytes()), Config{Points: 1})
	if err != nil {
		t.Fatal(err)
	}
	p, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if p.Flow != 2 || p.Elem != 1 {
		t.Fatalf("VLAN frame parsed wrong: %+v", p)
	}
}

func TestRawIPAndNanoseconds(t *testing.T) {
	b := newPcap(binary.LittleEndian, true, linkRawIP)
	ip := make([]byte, 20)
	ip[0] = 0x45
	binary.BigEndian.PutUint32(ip[12:16], 3)
	binary.BigEndian.PutUint32(ip[16:20], 4)
	b.record(0, 0, ip)
	b.record(0, 42, ip)
	r, err := NewReader(bytes.NewReader(b.buf.Bytes()), Config{Points: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	p, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if p.TS != 42 {
		t.Fatalf("nanosecond TS = %d, want 42", p.TS)
	}
}

func TestBigEndianFile(t *testing.T) {
	b := newPcap(binary.BigEndian, false, linkEthernet)
	b.record(5, 0, etherIPv4(1, 2, false))
	r, err := NewReader(bytes.NewReader(b.buf.Bytes()), Config{Points: 1})
	if err != nil {
		t.Fatal(err)
	}
	p, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if p.Flow != 2 {
		t.Fatalf("big-endian parse wrong: %+v", p)
	}
}

func TestIPv6Fold(t *testing.T) {
	b := newPcap(binary.LittleEndian, false, linkEthernet)
	var f []byte
	f = append(f, make([]byte, 12)...)
	f = append(f, 0x86, 0xDD)
	ip := make([]byte, 40)
	ip[0] = 0x60
	for i := 8; i < 24; i++ {
		ip[i] = byte(i) // src
	}
	for i := 24; i < 40; i++ {
		ip[i] = byte(100 + i) // dst
	}
	b.record(0, 0, append(f, ip...))
	r, err := NewReader(bytes.NewReader(b.buf.Bytes()), Config{Points: 1})
	if err != nil {
		t.Fatal(err)
	}
	p, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if p.Flow == 0 || p.Elem == 0 || p.Flow == p.Elem {
		t.Fatalf("IPv6 fold degenerate: %+v", p)
	}
}

func TestReaderErrors(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("short")), Config{Points: 1}); err == nil {
		t.Fatal("expected header error")
	}
	if _, err := NewReader(bytes.NewReader(make([]byte, 24)), Config{Points: 1}); err == nil {
		t.Fatal("expected magic error")
	}
	b := newPcap(binary.LittleEndian, false, linkEthernet)
	if _, err := NewReader(bytes.NewReader(b.buf.Bytes()), Config{Points: 0}); err == nil {
		t.Fatal("expected points error")
	}
	if _, err := NewReader(bytes.NewReader(b.buf.Bytes()), Config{Points: 1, FlowBy: 99}); err == nil {
		t.Fatal("expected FlowBy error")
	}
	// Unsupported link type.
	var gh [24]byte
	binary.LittleEndian.PutUint32(gh[0:4], magicMicroLE)
	binary.LittleEndian.PutUint32(gh[20:24], 113)
	if _, err := NewReader(bytes.NewReader(gh[:]), Config{Points: 1}); err == nil {
		t.Fatal("expected link-type error")
	}
	// Truncated frame payload.
	tb := newPcap(binary.LittleEndian, false, linkEthernet)
	var rh [16]byte
	binary.LittleEndian.PutUint32(rh[8:12], 100)
	tb.buf.Write(rh[:])
	tb.buf.Write([]byte{1, 2, 3})
	r, err := NewReader(bytes.NewReader(tb.buf.Bytes()), Config{Points: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil || errors.Is(err, io.EOF) {
		t.Fatalf("expected truncation error, got %v", err)
	}
}

func TestIteratorFeedsCluster(t *testing.T) {
	b := newPcap(binary.LittleEndian, false, linkEthernet)
	for i := 0; i < 50; i++ {
		b.record(uint32(i/10), uint32(i%10)*1000, etherIPv4(uint32(i%7), 0x0a0a0a0a, false))
	}
	r, err := NewReader(bytes.NewReader(b.buf.Bytes()), Config{Points: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	it := r.Iterate()
	var _ trace.Iterator = it
	n := 0
	var last int64 = -1
	for {
		p, ok := it.Next()
		if !ok {
			break
		}
		if p.TS < last {
			t.Fatal("pcap packets out of order")
		}
		last = p.TS
		n++
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if n != 50 {
		t.Fatalf("iterated %d packets, want 50", n)
	}
}

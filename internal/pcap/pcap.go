// Package pcap reads classic libpcap capture files and turns their
// packets into the abstract <flow, element> packets the measurement
// system consumes — the adoption path for users who want to replay their
// own captures instead of the synthetic CAIDA-like trace (the paper's
// actual CAIDA input is a pcap of this kind).
//
// Supported: the classic file format (not pcapng), little- and big-endian
// magic, microsecond and nanosecond timestamp resolutions, Ethernet
// (including one 802.1Q VLAN tag) and raw-IP link types, IPv4 and IPv6.
// Non-IP frames are skipped. Flow label and element are the destination
// and source addresses (or swapped, per Config), matching the paper's
// DDoS/scan use cases.
package pcap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/trace"
	"repro/internal/xhash"
)

// Magic numbers of the classic pcap format.
const (
	magicMicroLE = 0xa1b2c3d4
	magicMicroBE = 0xd4c3b2a1
	magicNanoLE  = 0xa1b23c4d
	magicNanoBE  = 0x4d3cb2a1
)

// Link types understood by the reader.
const (
	linkEthernet = 1
	linkRawIP    = 101
)

// FlowBy selects which address is the flow label.
type FlowBy int

const (
	// FlowByDst makes the destination address the flow label and the
	// source the element (DDoS-victim detection, the paper's default).
	FlowByDst FlowBy = iota + 1
	// FlowBySrc makes the source address the flow label and the
	// destination the element (scan detection).
	FlowBySrc
)

// Config controls the translation into measurement packets.
type Config struct {
	// Points is the number of measurement points packets are spread over
	// (hashed from the address pair, so a flow's packets still hit
	// multiple points, like the paper's random split).
	Points int
	// FlowBy selects the flow label (0 = FlowByDst).
	FlowBy FlowBy
	// Seed scatters packets over points.
	Seed uint64
}

// Reader streams measurement packets from a pcap file.
type Reader struct {
	r         io.Reader
	cfg       Config
	order     binary.ByteOrder
	nano      bool
	link      uint32
	firstTS   int64
	haveFirst bool
	hdr       [16]byte
	buf       []byte
}

// NewReader parses the pcap global header.
func NewReader(r io.Reader, cfg Config) (*Reader, error) {
	if cfg.Points < 1 {
		return nil, fmt.Errorf("pcap: points must be positive, got %d", cfg.Points)
	}
	if cfg.FlowBy == 0 {
		cfg.FlowBy = FlowByDst
	}
	if cfg.FlowBy != FlowByDst && cfg.FlowBy != FlowBySrc {
		return nil, fmt.Errorf("pcap: invalid FlowBy %d", cfg.FlowBy)
	}
	var gh [24]byte
	if _, err := io.ReadFull(r, gh[:]); err != nil {
		return nil, fmt.Errorf("pcap: read global header: %w", err)
	}
	magic := binary.LittleEndian.Uint32(gh[0:4])
	pr := &Reader{r: r, cfg: cfg}
	switch magic {
	case magicMicroLE:
		pr.order = binary.LittleEndian
	case magicNanoLE:
		pr.order, pr.nano = binary.LittleEndian, true
	case magicMicroBE:
		pr.order = binary.BigEndian
	case magicNanoBE:
		pr.order, pr.nano = binary.BigEndian, true
	default:
		return nil, fmt.Errorf("pcap: unrecognized magic %#x (pcapng is not supported)", magic)
	}
	pr.link = pr.order.Uint32(gh[20:24])
	if pr.link != linkEthernet && pr.link != linkRawIP {
		return nil, fmt.Errorf("pcap: unsupported link type %d", pr.link)
	}
	return pr, nil
}

// Next returns the next IP packet as a measurement packet, or io.EOF.
// Non-IP frames are skipped silently.
func (pr *Reader) Next() (trace.Packet, error) {
	for {
		if _, err := io.ReadFull(pr.r, pr.hdr[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return trace.Packet{}, io.EOF
			}
			return trace.Packet{}, fmt.Errorf("pcap: read record header: %w", err)
		}
		var (
			sec    = int64(pr.order.Uint32(pr.hdr[0:4]))
			subsec = int64(pr.order.Uint32(pr.hdr[4:8]))
			incl   = int(pr.order.Uint32(pr.hdr[8:12]))
		)
		const maxFrame = 1 << 20
		if incl < 0 || incl > maxFrame {
			return trace.Packet{}, fmt.Errorf("pcap: implausible record length %d", incl)
		}
		if cap(pr.buf) < incl {
			pr.buf = make([]byte, incl)
		}
		frame := pr.buf[:incl]
		if _, err := io.ReadFull(pr.r, frame); err != nil {
			return trace.Packet{}, fmt.Errorf("pcap: read frame: %w", err)
		}
		ts := sec * 1e9
		if pr.nano {
			ts += subsec
		} else {
			ts += subsec * 1e3
		}
		if !pr.haveFirst {
			pr.firstTS = ts
			pr.haveFirst = true
		}
		src, dst, ok := pr.addresses(frame)
		if !ok {
			continue // non-IP frame
		}
		flow, elem := dst, src
		if pr.cfg.FlowBy == FlowBySrc {
			flow, elem = src, dst
		}
		return trace.Packet{
			TS:    ts - pr.firstTS,
			Point: int(xhash.HashPair(src, dst, pr.cfg.Seed) % uint64(pr.cfg.Points)),
			Flow:  flow,
			Elem:  elem,
		}, nil
	}
}

// addresses extracts the IP source and destination from a frame.
func (pr *Reader) addresses(frame []byte) (src, dst uint64, ok bool) {
	ip := frame
	if pr.link == linkEthernet {
		if len(frame) < 14 {
			return 0, 0, false
		}
		etherType := binary.BigEndian.Uint16(frame[12:14])
		off := 14
		if etherType == 0x8100 { // 802.1Q VLAN tag
			if len(frame) < 18 {
				return 0, 0, false
			}
			etherType = binary.BigEndian.Uint16(frame[16:18])
			off = 18
		}
		switch etherType {
		case 0x0800, 0x86DD:
			ip = frame[off:]
		default:
			return 0, 0, false
		}
	}
	if len(ip) < 1 {
		return 0, 0, false
	}
	switch ip[0] >> 4 {
	case 4:
		if len(ip) < 20 {
			return 0, 0, false
		}
		return uint64(binary.BigEndian.Uint32(ip[12:16])),
			uint64(binary.BigEndian.Uint32(ip[16:20])), true
	case 6:
		if len(ip) < 40 {
			return 0, 0, false
		}
		// Fold each 128-bit address to 64 bits (same fold everywhere, so
		// distinct-counting semantics survive up to fold collisions).
		return binary.BigEndian.Uint64(ip[8:16]) ^ binary.BigEndian.Uint64(ip[16:24]),
			binary.BigEndian.Uint64(ip[24:32]) ^ binary.BigEndian.Uint64(ip[32:40]), true
	default:
		return 0, 0, false
	}
}

// Iterate returns a trace.Iterator view of the reader. The first read
// error (other than EOF) terminates iteration; check Err afterwards via
// the returned *ReaderIterator.
func (pr *Reader) Iterate() *ReaderIterator {
	return &ReaderIterator{r: pr}
}

// ReaderIterator is a trace.Iterator over a pcap reader.
type ReaderIterator struct {
	r   *Reader
	err error
}

// Next implements trace.Iterator.
func (it *ReaderIterator) Next() (trace.Packet, bool) {
	if it.err != nil {
		return trace.Packet{}, false
	}
	p, err := it.r.Next()
	if err != nil {
		if !errors.Is(err, io.EOF) {
			it.err = err
		}
		return trace.Packet{}, false
	}
	return p, true
}

// Err reports the error that terminated iteration, if any.
func (it *ReaderIterator) Err() error { return it.err }

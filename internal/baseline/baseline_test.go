package baseline

import (
	"errors"
	"math"
	"testing"

	"repro/internal/slidingsketch"
	"repro/internal/vate"
)

func newSlidingSketch() *slidingsketch.Sketch {
	return slidingsketch.New(slidingsketch.Params{D: 4, W: 1024, Zones: 6, Seed: 1})
}

func newVate() *vate.Sketch {
	return vate.New(vate.Params{VirtualBits: 1024, PhysicalCells: 1 << 17, WindowN: 5, Seed: 1})
}

func TestNetworkwideSizeSumsPeers(t *testing.T) {
	local := &NetworkwideSize{Local: newSlidingSketch()}
	peerA, peerB := newSlidingSketch(), newSlidingSketch()
	local.Peers = []SizePeer{LocalSizePeer{Sketch: peerA}, LocalSizePeer{Sketch: peerB}}

	for i := 0; i < 10; i++ {
		local.Record(7)
	}
	for i := 0; i < 5; i++ {
		peerA.Record(7)
	}
	for i := 0; i < 3; i++ {
		peerB.Record(7)
	}
	got, err := local.Query(7)
	if err != nil {
		t.Fatal(err)
	}
	if got != 18 {
		t.Fatalf("networkwide size = %d, want 18", got)
	}
}

func TestNetworkwideSizeAdvanceExpires(t *testing.T) {
	nw := &NetworkwideSize{Local: newSlidingSketch()}
	nw.Record(1)
	for i := 0; i < 6; i++ {
		nw.Advance()
	}
	got, err := nw.Query(1)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("expired flow size = %d, want 0", got)
	}
}

type failingSizePeer struct{}

func (failingSizePeer) QuerySize(uint64) (int64, error) {
	return 0, errors.New("unreachable")
}

type failingSpreadPeer struct{}

func (failingSpreadPeer) QuerySpread(uint64) (float64, error) {
	return 0, errors.New("unreachable")
}

func TestNetworkwidePeerErrorsPropagate(t *testing.T) {
	nws := &NetworkwideSize{Local: newSlidingSketch(), Peers: []SizePeer{failingSizePeer{}}}
	if _, err := nws.Query(1); err == nil {
		t.Fatal("expected peer error for size")
	}
	nwp := &NetworkwideSpread{Local: newVate(), Peers: []SpreadPeer{failingSpreadPeer{}}}
	if _, err := nwp.Query(1); err == nil {
		t.Fatal("expected peer error for spread")
	}
}

func TestNetworkwideSpreadSumsPeers(t *testing.T) {
	local := &NetworkwideSpread{Local: newVate()}
	peer := newVate()
	local.Peers = []SpreadPeer{LocalSpreadPeer{Sketch: peer}}

	for e := 0; e < 300; e++ {
		local.Record(9, uint64(e))
	}
	for e := 0; e < 200; e++ {
		peer.Record(9, uint64(e)+10_000)
	}
	got, err := local.Query(9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-500) > 120 {
		t.Fatalf("networkwide spread = %.0f, want ~500", got)
	}
}

func TestNetworkwideSpreadDoubleCountsOverlap(t *testing.T) {
	// The baseline's known weakness: the same elements at two points are
	// counted twice. Keep this behaviour (the paper does).
	local := &NetworkwideSpread{Local: newVate()}
	peer := newVate()
	local.Peers = []SpreadPeer{LocalSpreadPeer{Sketch: peer}}
	for e := 0; e < 400; e++ {
		local.Record(3, uint64(e))
		peer.Record(3, uint64(e)) // identical elements
	}
	got, err := local.Query(3)
	if err != nil {
		t.Fatal(err)
	}
	if got < 600 {
		t.Fatalf("overlapping spread = %.0f, expected double counting (~800)", got)
	}
}

// Package baseline assembles the networkwide baseline deployments the
// paper evaluates against (Section VII-A): every measurement point runs the
// state-of-the-art single-point T-query sketch (Sliding Sketch for size,
// VATE for spread), and a networkwide query at point v_x fetches the other
// points' local answers and adds all of them up.
//
// The fetch is what makes the baselines slow in Table I: it costs a round
// trip per peer, while the paper's designs answer from local memory. Peers
// are abstracted so simulations can wire sketches directly (accuracy
// experiments) while the query-overhead benchmark wires real TCP peers.
package baseline

import (
	"fmt"

	"repro/internal/slidingsketch"
	"repro/internal/vate"
)

// SizePeer answers windowed flow-size queries, possibly over a network.
type SizePeer interface {
	QuerySize(f uint64) (int64, error)
}

// SpreadPeer answers windowed flow-spread queries, possibly over a network.
type SpreadPeer interface {
	QuerySpread(f uint64) (float64, error)
}

// LocalSizePeer adapts a local Sliding Sketch as a peer.
type LocalSizePeer struct {
	Sketch *slidingsketch.Sketch
}

// QuerySize returns the local windowed estimate.
func (p LocalSizePeer) QuerySize(f uint64) (int64, error) {
	return p.Sketch.Estimate(f), nil
}

// LocalSpreadPeer adapts a local VATE sketch as a peer.
type LocalSpreadPeer struct {
	Sketch *vate.Sketch
}

// QuerySpread returns the local windowed estimate.
func (p LocalSpreadPeer) QuerySpread(f uint64) (float64, error) {
	return p.Sketch.Estimate(f), nil
}

// NetworkwideSize is the size baseline at one measurement point.
type NetworkwideSize struct {
	Local *slidingsketch.Sketch
	Peers []SizePeer
}

// Record adds one local packet of flow f.
func (nw *NetworkwideSize) Record(f uint64) {
	nw.Local.Record(f)
}

// Advance rolls the local sliding window one epoch forward.
func (nw *NetworkwideSize) Advance() {
	nw.Local.Advance()
}

// Query answers a networkwide T-query: local estimate plus every peer's
// estimate.
func (nw *NetworkwideSize) Query(f uint64) (int64, error) {
	total := nw.Local.Estimate(f)
	for i, p := range nw.Peers {
		v, err := p.QuerySize(f)
		if err != nil {
			return 0, fmt.Errorf("baseline: size peer %d: %w", i, err)
		}
		total += v
	}
	return total, nil
}

// NetworkwideSpread is the spread baseline at one measurement point. Note
// that adding up per-point spreads double-counts elements observed at
// multiple points — an inherent weakness of the baseline the paper keeps.
type NetworkwideSpread struct {
	Local *vate.Sketch
	Peers []SpreadPeer
}

// Record notes a local packet <f, e>.
func (nw *NetworkwideSpread) Record(f, e uint64) {
	nw.Local.Record(f, e)
}

// Advance rolls the local sliding window one epoch forward.
func (nw *NetworkwideSpread) Advance() {
	nw.Local.Advance()
}

// Query answers a networkwide T-query: local estimate plus every peer's
// estimate.
func (nw *NetworkwideSpread) Query(f uint64) (float64, error) {
	total := nw.Local.Estimate(f)
	for i, p := range nw.Peers {
		v, err := p.QuerySpread(f)
		if err != nil {
			return 0, fmt.Errorf("baseline: spread peer %d: %w", i, err)
		}
		total += v
	}
	return total, nil
}

package metrics

import (
	"math"
	"testing"
)

func TestSummarizeExact(t *testing.T) {
	s := Summarize([]Sample{
		{Truth: 100, Est: 110}, // abs 10, rel +0.1
		{Truth: 100, Est: 90},  // abs 10, rel -0.1
		{Truth: 0, Est: 5},     // abs 5, skipped for relative metrics
	})
	if s.Count != 3 {
		t.Fatalf("Count = %d", s.Count)
	}
	if math.Abs(s.AvgAbsErr-25.0/3) > 1e-12 {
		t.Fatalf("AvgAbsErr = %v", s.AvgAbsErr)
	}
	if math.Abs(s.MeanRelBias) > 1e-12 {
		t.Fatalf("MeanRelBias = %v, want 0", s.MeanRelBias)
	}
	if math.Abs(s.RelStdErr-0.1) > 1e-12 {
		t.Fatalf("RelStdErr = %v, want 0.1", s.RelStdErr)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Count != 0 || s.AvgAbsErr != 0 || s.RelStdErr != 0 {
		t.Fatalf("empty summary not zero: %+v", s)
	}
}

func TestBucketByTruth(t *testing.T) {
	var samples []Sample
	for v := 1.0; v <= 1000; v *= 2 {
		samples = append(samples, Sample{Truth: v, Est: v * 1.1})
	}
	buckets := BucketByTruth(samples, 2)
	if len(buckets) == 0 {
		t.Fatal("no buckets")
	}
	total := 0
	for _, b := range buckets {
		total += b.Count
		if b.Lo >= b.Hi {
			t.Fatalf("bucket bounds inverted: %+v", b)
		}
		if math.Abs(b.MeanRelBias-0.1) > 1e-9 {
			t.Fatalf("bucket bias = %v, want 0.1", b.MeanRelBias)
		}
	}
	if total != len(samples) {
		t.Fatalf("buckets cover %d samples, want %d", total, len(samples))
	}
}

func TestBucketByTruthSkipsZero(t *testing.T) {
	buckets := BucketByTruth([]Sample{{Truth: 0, Est: 3}}, 3)
	if buckets != nil {
		t.Fatal("zero-truth samples should be skipped")
	}
}

func TestTruthSizeWindow(t *testing.T) {
	tr, err := NewTruth(5, 3, true, false)
	if err != nil {
		t.Fatal(err)
	}
	// Epochs 1..10: flow 7 gets 2 packets per point per epoch at points
	// 0,1 and 1 packet at point 2.
	for k := int64(1); k <= 10; k++ {
		for p := 0; p < 3; p++ {
			tr.Record(k, p, 7, 0)
			if p != 2 {
				tr.Record(k, p, 7, 1)
			}
		}
	}
	// Query at start of epoch 11 at point 0: all points epochs 7..9
	// (3 epochs * 5 pkts) + point 0 epoch 10 (2 pkts) = 17.
	got := tr.SizeTruth(0, 11)
	if got[7] != 17 {
		t.Fatalf("size truth = %d, want 17", got[7])
	}
	// At point 2 the local epoch contributes only 1 packet: 16.
	if got2 := tr.SizeTruth(2, 11); got2[7] != 16 {
		t.Fatalf("size truth at v2 = %d, want 16", got2[7])
	}
}

func TestTruthSpreadDeduplicates(t *testing.T) {
	tr, err := NewTruth(5, 2, false, true)
	if err != nil {
		t.Fatal(err)
	}
	// The same elements appear at both points and in multiple epochs;
	// spread must count them once.
	for k := int64(1); k <= 10; k++ {
		for p := 0; p < 2; p++ {
			for e := uint64(0); e < 50; e++ {
				tr.Record(k, p, 9, e)
			}
		}
	}
	if got := tr.SpreadTruth(0, 11); got[9] != 50 {
		t.Fatalf("spread truth = %d, want 50 (deduplicated)", got[9])
	}
}

func TestTruthSpreadLocalEpochElements(t *testing.T) {
	tr, err := NewTruth(5, 2, false, true)
	if err != nil {
		t.Fatal(err)
	}
	// Elements 0..9 appear networkwide in epoch 8; elements 100..104
	// appear only at point 1 in epoch 10 (the local epoch for kNext=11).
	for p := 0; p < 2; p++ {
		for e := uint64(0); e < 10; e++ {
			tr.Record(8, p, 1, e)
		}
	}
	for e := uint64(100); e < 105; e++ {
		tr.Record(10, 1, 1, e)
	}
	if got := tr.SpreadTruth(1, 11); got[1] != 15 {
		t.Fatalf("spread at v1 = %d, want 15", got[1])
	}
	if got := tr.SpreadTruth(0, 11); got[1] != 10 {
		t.Fatalf("spread at v0 = %d, want 10 (no local elements)", got[1])
	}
}

func TestTruthExpiresOldEpochs(t *testing.T) {
	tr, err := NewTruth(5, 1, true, false)
	if err != nil {
		t.Fatal(err)
	}
	tr.Record(1, 0, 3, 0)
	// Advance far: epoch 1's slot gets recycled.
	for k := int64(2); k <= 20; k++ {
		tr.Record(k, 0, 4, 0)
	}
	if got := tr.SizeTruth(0, 21); got[3] != 0 {
		t.Fatalf("expired epoch still counted: %v", got[3])
	}
}

func TestNewTruthValidation(t *testing.T) {
	if _, err := NewTruth(2, 1, true, true); err == nil {
		t.Fatal("expected error for n < 3")
	}
	if _, err := NewTruth(5, 0, true, true); err == nil {
		t.Fatal("expected error for zero points")
	}
}

package metrics

import (
	"math"
	"sort"
)

// Sample pairs one flow's true statistic with an estimate.
type Sample struct {
	Truth float64
	Est   float64
}

// Summary aggregates the paper's accuracy metrics over a flow set Γ
// (Section VII-A).
type Summary struct {
	// Count is |Γ|.
	Count int
	// AvgAbsErr is the mean of |est - truth|.
	AvgAbsErr float64
	// MeanRelBias is the mean of (est - truth)/truth over flows with
	// truth > 0.
	MeanRelBias float64
	// RelStdErr is sqrt(mean((est/truth - 1)^2)) over flows with
	// truth > 0.
	RelStdErr float64
}

// Summarize computes the summary metrics for a sample set.
func Summarize(samples []Sample) Summary {
	var (
		sumAbs  float64
		sumBias float64
		sumSq   float64
		nonZero int
	)
	for _, s := range samples {
		sumAbs += math.Abs(s.Est - s.Truth)
		if s.Truth > 0 {
			r := s.Est/s.Truth - 1
			sumBias += r
			sumSq += r * r
			nonZero++
		}
	}
	out := Summary{Count: len(samples)}
	if len(samples) > 0 {
		out.AvgAbsErr = sumAbs / float64(len(samples))
	}
	if nonZero > 0 {
		out.MeanRelBias = sumBias / float64(nonZero)
		out.RelStdErr = math.Sqrt(sumSq / float64(nonZero))
	}
	return out
}

// Bucket is the per-magnitude aggregation used by the paper's relative
// bias / relative standard error figures (x-axis: actual value).
type Bucket struct {
	// Lo and Hi bound the true values of the bucket (Lo inclusive).
	Lo, Hi float64
	// Count is the number of flows in the bucket.
	Count int
	// MeanRelBias and RelStdErr are the bucket's metrics.
	MeanRelBias float64
	RelStdErr   float64
}

// BucketByTruth splits samples with truth > 0 into geometric buckets of
// the true value and summarizes each, producing the series plotted in
// Figures 3-12 (bias/stderr vs actual size or spread).
func BucketByTruth(samples []Sample, perDecade int) []Bucket {
	var pos []Sample
	for _, s := range samples {
		if s.Truth > 0 {
			pos = append(pos, s)
		}
	}
	if len(pos) == 0 {
		return nil
	}
	sort.Slice(pos, func(i, j int) bool { return pos[i].Truth < pos[j].Truth })
	if perDecade < 1 {
		perDecade = 1
	}
	ratio := math.Pow(10, 1/float64(perDecade))
	var out []Bucket
	lo := pos[0].Truth
	i := 0
	for i < len(pos) {
		hi := lo * ratio
		var (
			sumBias float64
			sumSq   float64
			n       int
		)
		for i < len(pos) && pos[i].Truth < hi {
			r := pos[i].Est/pos[i].Truth - 1
			sumBias += r
			sumSq += r * r
			n++
			i++
		}
		if n > 0 {
			out = append(out, Bucket{
				Lo:          lo,
				Hi:          hi,
				Count:       n,
				MeanRelBias: sumBias / float64(n),
				RelStdErr:   math.Sqrt(sumSq / float64(n)),
			})
		}
		lo = hi
	}
	return out
}

// Package metrics computes exact ground truth for the approximate
// networkwide T-stream and the paper's three accuracy metrics: absolute
// error, relative bias and relative standard error (Section VII-A).
package metrics

import (
	"fmt"
)

// Truth tracks exact per-epoch, per-point flow statistics over a sliding
// ring of recent epochs, so that at any epoch boundary the exact statistic
// of any flow over the approximate networkwide T-stream can be computed.
type Truth struct {
	n      int // window epochs
	points int

	trackSize   bool
	trackSpread bool

	slots []truthSlot
}

type truthSlot struct {
	epoch  int64
	size   []map[uint64]int64
	spread []map[uint64]map[uint64]struct{}
}

// NewTruth creates a tracker for a window of n epochs across the given
// number of points. Tracking spread stores per-flow element sets; disable
// what an experiment does not need.
func NewTruth(n, points int, trackSize, trackSpread bool) (*Truth, error) {
	if n < 3 || points < 1 {
		return nil, fmt.Errorf("metrics: invalid truth dimensions n=%d points=%d", n, points)
	}
	t := &Truth{
		n:           n,
		points:      points,
		trackSize:   trackSize,
		trackSpread: trackSpread,
		slots:       make([]truthSlot, n+2),
	}
	for i := range t.slots {
		t.slots[i].epoch = -1
	}
	return t, nil
}

// slotFor returns the ring slot for the epoch, recycling expired slots.
func (t *Truth) slotFor(epoch int64) *truthSlot {
	s := &t.slots[int(epoch%int64(len(t.slots)))]
	if s.epoch != epoch {
		s.epoch = epoch
		if t.trackSize {
			s.size = make([]map[uint64]int64, t.points)
			for i := range s.size {
				s.size[i] = make(map[uint64]int64)
			}
		}
		if t.trackSpread {
			s.spread = make([]map[uint64]map[uint64]struct{}, t.points)
			for i := range s.spread {
				s.spread[i] = make(map[uint64]map[uint64]struct{})
			}
		}
	}
	return s
}

// Record notes packet <f, e> arriving at point during epoch.
func (t *Truth) Record(epoch int64, point int, f, e uint64) {
	s := t.slotFor(epoch)
	if t.trackSize {
		s.size[point][f]++
	}
	if t.trackSpread {
		set := s.spread[point][f]
		if set == nil {
			set = make(map[uint64]struct{})
			s.spread[point][f] = set
		}
		set[e] = struct{}{}
	}
}

// held returns the slot for epoch if it is still resident.
func (t *Truth) held(epoch int64) *truthSlot {
	if epoch < 1 {
		return nil
	}
	s := &t.slots[int(epoch%int64(len(t.slots)))]
	if s.epoch != epoch {
		return nil
	}
	return s
}

// windowEpochs enumerates the (epoch, pointRestrict) pairs of the
// approximate networkwide T-stream for a boundary query at the start of
// epoch kNext at point x: all points for epochs kNext-n+1 .. kNext-2, and
// point x only for epoch kNext-1. pointRestrict < 0 means all points.
func (t *Truth) windowEpochs(kNext int64) (first, last int64) {
	return kNext - int64(t.n) + 1, kNext - 2
}

// SizeTruth returns the exact per-flow sizes of the approximate networkwide
// T-stream for a query at the start of epoch kNext at point x.
func (t *Truth) SizeTruth(x int, kNext int64) map[uint64]int64 {
	out := make(map[uint64]int64)
	first, last := t.windowEpochs(kNext)
	for e := first; e <= last; e++ {
		s := t.held(e)
		if s == nil || s.size == nil {
			continue
		}
		for p := 0; p < t.points; p++ {
			for f, c := range s.size[p] {
				out[f] += c
			}
		}
	}
	if s := t.held(kNext - 1); s != nil && s.size != nil {
		for f, c := range s.size[x] {
			out[f] += c
		}
	}
	return out
}

// SizeTruthExact returns the exact per-flow sizes of the *exact*
// networkwide T-query at the boundary of epoch kNext: all points, all
// completed window epochs kNext-n+1 .. kNext-1. The Section IV-D
// enhancement moves the protocol's answers from the approximate stream
// toward this target.
func (t *Truth) SizeTruthExact(kNext int64) map[uint64]int64 {
	out := make(map[uint64]int64)
	for e := kNext - int64(t.n) + 1; e <= kNext-1; e++ {
		s := t.held(e)
		if s == nil || s.size == nil {
			continue
		}
		for p := 0; p < t.points; p++ {
			for f, c := range s.size[p] {
				out[f] += c
			}
		}
	}
	return out
}

// SpreadTruthExact returns the exact per-flow spreads of the exact
// networkwide T-query at the boundary of epoch kNext (see SizeTruthExact).
func (t *Truth) SpreadTruthExact(kNext int64) map[uint64]int64 {
	sets := make(map[uint64]map[uint64]struct{})
	for e := kNext - int64(t.n) + 1; e <= kNext-1; e++ {
		s := t.held(e)
		if s == nil || s.spread == nil {
			continue
		}
		for p := 0; p < t.points; p++ {
			for f, es := range s.spread[p] {
				set := sets[f]
				if set == nil {
					set = make(map[uint64]struct{}, len(es))
					sets[f] = set
				}
				for e := range es {
					set[e] = struct{}{}
				}
			}
		}
	}
	out := make(map[uint64]int64, len(sets))
	for f, set := range sets {
		out[f] = int64(len(set))
	}
	return out
}

// SpreadTruth returns the exact per-flow spreads (distinct element counts)
// of the approximate networkwide T-stream for a query at the start of
// epoch kNext at point x.
func (t *Truth) SpreadTruth(x int, kNext int64) map[uint64]int64 {
	sets := make(map[uint64]map[uint64]struct{})
	first, last := t.windowEpochs(kNext)
	add := func(per map[uint64]map[uint64]struct{}) {
		for f, es := range per {
			set := sets[f]
			if set == nil {
				set = make(map[uint64]struct{}, len(es))
				sets[f] = set
			}
			for e := range es {
				set[e] = struct{}{}
			}
		}
	}
	for e := first; e <= last; e++ {
		s := t.held(e)
		if s == nil || s.spread == nil {
			continue
		}
		for p := 0; p < t.points; p++ {
			add(s.spread[p])
		}
	}
	if s := t.held(kNext - 1); s != nil && s.spread != nil {
		add(s.spread[x])
	}
	out := make(map[uint64]int64, len(sets))
	for f, set := range sets {
		out[f] = int64(len(set))
	}
	return out
}

package faultnet

import (
	"errors"
	"io"
	"net"
	"os"
	"testing"
	"time"
)

// isTimeout asserts the error is the honest socket-style deadline error:
// os.ErrDeadlineExceeded and a net.Error with Timeout() == true.
func isTimeout(t *testing.T, err error) {
	t.Helper()
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("want os.ErrDeadlineExceeded, got %v", err)
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("want net.Error with Timeout()==true, got %v", err)
	}
}

func TestReadDeadlineExpiresBlockedRead(t *testing.T) {
	n := New(1)
	n.Listen()
	client, server := dialPair(t, n)
	defer client.Close()
	defer server.Close()

	server.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	start := time.Now()
	_, err := server.Read(make([]byte, 1))
	isTimeout(t, err)
	if time.Since(start) < 20*time.Millisecond {
		t.Fatal("read returned before the deadline")
	}

	// The connection survives a timeout: clear the deadline and traffic
	// flows again, exactly like a real socket.
	server.SetReadDeadline(time.Time{})
	if _, err := client.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(server, make([]byte, 1)); err != nil {
		t.Fatalf("read after clearing deadline: %v", err)
	}
}

func TestPastReadDeadlineFailsImmediately(t *testing.T) {
	n := New(1)
	n.Listen()
	client, server := dialPair(t, n)
	defer client.Close()
	defer server.Close()

	server.SetReadDeadline(time.Now().Add(-time.Second))
	_, err := server.Read(make([]byte, 1))
	isTimeout(t, err)
}

func TestReadDeadlineDoesNotDropBufferedData(t *testing.T) {
	n := New(1)
	n.Listen()
	client, server := dialPair(t, n)
	defer client.Close()
	defer server.Close()

	if _, err := client.Write([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	// Even an already-expired deadline must not mask data that is ready.
	server.SetReadDeadline(time.Now().Add(-time.Second))
	buf := make([]byte, 2)
	if _, err := io.ReadFull(server, buf); err != nil {
		t.Fatalf("buffered data must win over the deadline: %v", err)
	}
	if string(buf) != "ok" {
		t.Fatalf("got %q", buf)
	}
}

func TestSetDeadlineWakesBlockedReader(t *testing.T) {
	n := New(1)
	n.Listen()
	client, server := dialPair(t, n)
	defer client.Close()
	defer server.Close()

	errs := make(chan error, 1)
	go func() {
		_, err := server.Read(make([]byte, 1))
		errs <- err
	}()
	// Give the reader time to block with no deadline, then arm one
	// retroactively — it must wake the in-flight Read.
	time.Sleep(10 * time.Millisecond)
	server.SetReadDeadline(time.Now().Add(20 * time.Millisecond))
	select {
	case err := <-errs:
		isTimeout(t, err)
	case <-time.After(2 * time.Second):
		t.Fatal("blocked read did not observe the new deadline")
	}
}

func TestWriteDeadlineOnHalfOpenPeer(t *testing.T) {
	n := New(1)
	n.Listen()
	link := n.Link()
	done := make(chan net.Conn, 1)
	go func() {
		c, _ := n.listener(DefaultNode).Accept()
		done <- c
	}()
	client, err := link.Dial("")
	if err != nil {
		t.Fatal(err)
	}
	server := <-done
	defer client.Close()
	defer server.Close()

	link.HalfOpen()

	// Writes into a half-open connection block silently; only a write
	// deadline surfaces the stall.
	client.SetWriteDeadline(time.Now().Add(30 * time.Millisecond))
	_, err = client.Write([]byte("upload"))
	isTimeout(t, err)

	// Reads starve the same way.
	server.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	_, err = server.Read(make([]byte, 1))
	isTimeout(t, err)
}

func TestHalfOpenWriteBlocksWithoutDeadline(t *testing.T) {
	n := New(1)
	n.Listen()
	link := n.Link()
	done := make(chan net.Conn, 1)
	go func() {
		c, _ := n.listener(DefaultNode).Accept()
		done <- c
	}()
	client, err := link.Dial("")
	if err != nil {
		t.Fatal(err)
	}
	server := <-done
	defer server.Close()

	link.HalfOpen()
	wrote := make(chan error, 1)
	go func() {
		_, err := client.Write([]byte("stuck"))
		wrote <- err
	}()
	select {
	case err := <-wrote:
		t.Fatalf("write completed on half-open conn: %v", err)
	case <-time.After(30 * time.Millisecond):
	}
	// Closing our own end releases the stuck writer with ErrClosed —
	// the escape hatch eviction paths rely on.
	client.Close()
	if err := <-wrote; !errors.Is(err, net.ErrClosed) {
		t.Fatalf("want net.ErrClosed after own close, got %v", err)
	}
}

func TestCloseAbortsReadHeldByHalfOpen(t *testing.T) {
	n := New(1)
	n.Listen()
	link := n.Link()
	done := make(chan net.Conn, 1)
	go func() {
		c, _ := n.listener(DefaultNode).Accept()
		done <- c
	}()
	client, err := link.Dial("")
	if err != nil {
		t.Fatal(err)
	}
	server := <-done
	defer server.Close()

	link.HalfOpen()
	read := make(chan error, 1)
	go func() {
		_, err := client.Read(make([]byte, 1))
		read <- err
	}()
	time.Sleep(10 * time.Millisecond)
	// A client that gives up (deadline elsewhere, redial) closes its end;
	// the blocked read must not wedge forever behind the held buffer.
	client.Close()
	select {
	case err := <-read:
		if !errors.Is(err, net.ErrClosed) {
			t.Fatalf("want net.ErrClosed, got %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("read stayed wedged after own close")
	}
}

func TestCutReleasesHalfOpen(t *testing.T) {
	n := New(1)
	n.Listen()
	link := n.Link()
	done := make(chan net.Conn, 1)
	go func() {
		c, _ := n.listener(DefaultNode).Accept()
		done <- c
	}()
	client, err := link.Dial("")
	if err != nil {
		t.Fatal(err)
	}
	server := <-done
	defer client.Close()
	defer server.Close()

	link.HalfOpen()
	wrote := make(chan error, 1)
	go func() {
		_, err := client.Write([]byte("x"))
		wrote <- err
	}()
	time.Sleep(10 * time.Millisecond)
	link.Cut()
	if err := <-wrote; !errors.Is(err, ErrCut) {
		t.Fatalf("want ErrCut, got %v", err)
	}
	if _, err := server.Read(make([]byte, 1)); !errors.Is(err, ErrCut) {
		t.Fatalf("server read after cut: %v", err)
	}
}

func TestWriteDeadlineIgnoredOnHealthyConn(t *testing.T) {
	n := New(1)
	n.Listen()
	client, server := dialPair(t, n)
	defer client.Close()
	defer server.Close()

	// Healthy fabric writes buffer without blocking, so even an expired
	// write deadline never fires — matching a socket whose send buffer
	// has room.
	client.SetWriteDeadline(time.Now().Add(-time.Second))
	if _, err := client.Write([]byte("fine")); err != nil {
		t.Fatalf("buffered write must not time out: %v", err)
	}
	if _, err := io.ReadFull(server, make([]byte, 4)); err != nil {
		t.Fatal(err)
	}
}

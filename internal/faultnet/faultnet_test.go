package faultnet

import (
	"errors"
	"io"
	"net"
	"testing"
)

func dialPair(t *testing.T, n *Network) (client net.Conn, server net.Conn) {
	t.Helper()
	done := make(chan net.Conn, 1)
	lis := n.listener(DefaultNode)
	go func() {
		c, err := lis.Accept()
		if err != nil {
			close(done)
			return
		}
		done <- c
	}()
	client, err := n.Dial("ignored")
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	server, ok := <-done
	if !ok {
		t.Fatal("accept failed")
	}
	return client, server
}

func TestConnRoundTrip(t *testing.T) {
	n := New(1)
	n.Listen()
	client, server := dialPair(t, n)
	defer client.Close()
	defer server.Close()

	msg := []byte("hello center")
	if _, err := client.Write(msg); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(server, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != string(msg) {
		t.Fatalf("got %q", buf)
	}
	// And the reverse direction.
	if _, err := server.Write([]byte("push")); err != nil {
		t.Fatal(err)
	}
	buf = make([]byte, 4)
	if _, err := io.ReadFull(client, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "push" {
		t.Fatalf("got %q", buf)
	}
}

func TestCloseGivesEOFAfterDrain(t *testing.T) {
	n := New(1)
	n.Listen()
	client, server := dialPair(t, n)
	defer server.Close()

	if _, err := client.Write([]byte("last words")); err != nil {
		t.Fatal(err)
	}
	client.Close()
	buf := make([]byte, 10)
	if _, err := io.ReadFull(server, buf); err != nil {
		t.Fatalf("pre-close bytes must drain: %v", err)
	}
	if _, err := server.Read(buf); err != io.EOF {
		t.Fatalf("want EOF after drain, got %v", err)
	}
	if _, err := server.Write([]byte("x")); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("write to closed peer: %v", err)
	}
	if _, err := client.Read(buf); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("read on own closed conn: %v", err)
	}
}

func TestCutFailsBothEndsAndDiscards(t *testing.T) {
	n := New(1)
	n.Listen()
	link := n.Link()
	done := make(chan net.Conn, 1)
	go func() {
		c, _ := n.listener(DefaultNode).Accept()
		done <- c
	}()
	client, err := link.Dial("")
	if err != nil {
		t.Fatal(err)
	}
	server := <-done

	// Bytes in flight are discarded by the cut, not delivered.
	if _, err := client.Write([]byte("doomed upload")); err != nil {
		t.Fatal(err)
	}
	link.Cut()
	buf := make([]byte, 8)
	if _, err := server.Read(buf); !errors.Is(err, ErrCut) {
		t.Fatalf("server read after cut: %v", err)
	}
	if _, err := client.Write([]byte("x")); !errors.Is(err, ErrCut) {
		t.Fatalf("client write after cut: %v", err)
	}
	if _, err := server.Write([]byte("x")); !errors.Is(err, ErrCut) {
		t.Fatalf("server write after cut: %v", err)
	}
}

func TestHoldStallsDeliveryUntilRelease(t *testing.T) {
	n := New(1)
	n.Listen()
	link := n.Link()
	done := make(chan net.Conn, 1)
	go func() {
		c, _ := n.listener(DefaultNode).Accept()
		done <- c
	}()
	client, err := link.Dial("")
	if err != nil {
		t.Fatal(err)
	}
	server := <-done
	defer client.Close()
	defer server.Close()

	link.HoldPushes()
	if _, err := server.Write([]byte("slow push")); err != nil {
		t.Fatal(err)
	}
	read := make(chan struct{})
	go func() {
		buf := make([]byte, 9)
		if _, err := io.ReadFull(client, buf); err != nil {
			t.Errorf("read after release: %v", err)
		}
		close(read)
	}()
	// The reader must be blocked by the hold; release delivers.
	select {
	case <-read:
		t.Fatal("read completed while direction was held")
	default:
	}
	link.ReleasePushes()
	<-read
}

func TestPartitionAndHeal(t *testing.T) {
	n := New(1)
	n.Listen()
	client, server := dialPair(t, n)

	n.Partition()
	if _, err := n.Dial(""); !errors.Is(err, ErrDown) {
		t.Fatal("dial must fail while partitioned")
	}
	buf := make([]byte, 1)
	if _, err := client.Read(buf); !errors.Is(err, ErrCut) {
		t.Fatalf("existing conn must be cut: %v", err)
	}
	_ = server

	n.Heal()
	c2, s2 := dialPair(t, n)
	defer c2.Close()
	defer s2.Close()
	if _, err := c2.Write([]byte("back")); err != nil {
		t.Fatalf("write after heal: %v", err)
	}
}

func TestFailDials(t *testing.T) {
	n := New(1)
	n.Listen()
	link := n.Link()
	link.FailDials(2)
	for i := 0; i < 2; i++ {
		if _, err := link.Dial(""); !errors.Is(err, ErrDown) {
			t.Fatalf("dial %d should fail", i)
		}
	}
	done := make(chan net.Conn, 1)
	go func() {
		c, _ := n.listener(DefaultNode).Accept()
		done <- c
	}()
	if _, err := link.Dial(""); err != nil {
		t.Fatalf("third dial should succeed: %v", err)
	}
	(<-done).Close()
	if link.Dials() != 1 {
		t.Fatalf("Dials = %d, want 1", link.Dials())
	}
}

func TestListenerClose(t *testing.T) {
	n := New(1)
	lis := n.Listen()
	errs := make(chan error, 1)
	go func() {
		_, err := lis.Accept()
		errs <- err
	}()
	lis.Close()
	if err := <-errs; !errors.Is(err, net.ErrClosed) {
		t.Fatalf("accept after close: %v", err)
	}
	if _, err := n.Dial(""); err == nil {
		t.Fatal("dial to closed listener must fail")
	}
}

func TestSeededRandIsDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 16; i++ {
		if x, y := a.Rand().Int63(), b.Rand().Int63(); x != y {
			t.Fatalf("draw %d: %d != %d", i, x, y)
		}
	}
}

func TestRelistenAfterClose(t *testing.T) {
	n := New(1)
	lis := n.Listen()
	lis.Close()

	// A closed listener models a crashed center; a new Listen is its
	// restart, and dials reach the new accept queue.
	lis2 := n.Listen()
	done := make(chan net.Conn, 1)
	go func() {
		c, err := lis2.Accept()
		if err != nil {
			close(done)
			return
		}
		done <- c
	}()
	client, err := n.Dial("")
	if err != nil {
		t.Fatalf("dial after re-listen: %v", err)
	}
	server, ok := <-done
	if !ok {
		t.Fatal("accept on the new listener failed")
	}
	client.Close()
	server.Close()

	defer func() {
		if recover() == nil {
			t.Fatal("Listen on a live listener must panic")
		}
	}()
	n.Listen()
}

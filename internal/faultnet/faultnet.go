// Package faultnet is an in-memory network fabric for deterministic
// fault-injection tests of the center↔point protocol. It provides a
// net.Listener and dialers whose connections are plain in-process byte
// pipes, plus scriptable fault controls that act at message boundaries:
//
//   - Link.Cut severs a point's current connection (both directions fail
//     like a reset TCP connection, buffered bytes are discarded);
//   - Link.HoldPushes / Link.HoldUploads stall one direction without
//     dropping it (slow-link injection) until the matching Release;
//   - Link.FailDials makes the next k redial attempts fail;
//   - Link.HalfOpen models a peer host that vanished without FIN: both
//     directions stall (reads starve, writes block) with no error and no
//     close, so only deadlines or heartbeat eviction can detect it;
//   - Network.Partition takes the center off the network (dials fail,
//     existing connections are cut) until Network.Heal.
//
// Multi-level fabrics (aggregation relays, sharded centers) register
// additional listening nodes by name: ListenAt/LinkTo/DialerTo address a
// node, and PartitionNode/HealNode scope an outage to it. The
// single-center surface above is the DefaultNode special case.
//
// Because every fault is triggered explicitly by the test between protocol
// steps — never by a timer — each failure scenario is reproducible
// byte-for-byte and clean under the race detector. The seeded Rand lets a
// test script derive fault schedules (which epoch to drop, which point to
// restart) that are random-looking but fixed for a given seed.
//
// Deadlines are honest: SetReadDeadline/SetWriteDeadline arm a timer on
// the blocked buffer operation and expire with os.ErrDeadlineExceeded
// (a net.Error with Timeout() == true), exactly like a real socket. They
// are the only timer-driven part of the fabric, and only tests that set
// them pay that nondeterminism — everything else stays message-scripted.
package faultnet

import (
	"errors"
	"io"
	"math/rand"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// ErrCut is returned by reads and writes on a connection severed by fault
// injection (Link.Cut, Network.Partition), mimicking a reset connection.
var ErrCut = errors.New("faultnet: connection cut by fault injection")

// ErrDown is returned by dials while the center is unreachable
// (Network.Partition or Link.FailDials).
var ErrDown = errors.New("faultnet: center unreachable")

type fakeAddr string

func (a fakeAddr) Network() string { return "faultnet" }
func (a fakeAddr) String() string  { return string(a) }

// buffer is one direction of a connection pair: an unbounded byte queue
// with graceful-close, cut, hold and deadline states. Each buffer has
// exactly one reading endpoint and one writing endpoint, so the read and
// write deadlines each have a single owner and never conflict.
type buffer struct {
	mu       sync.Mutex
	cond     *sync.Cond
	data     []byte
	closed   bool // graceful close: readers drain, then EOF; writers fail
	cut      bool // fault: both sides fail immediately, queued bytes dropped
	held     bool // slow link: readers stall until released
	blockedW bool // half-open: writers stall too (peer stopped draining)
	rdl, wdl time.Time
}

func newBuffer() *buffer {
	b := &buffer{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// waitLocked blocks on the condition variable, additionally waking when
// the deadline passes. The timer broadcasts rather than signals so it
// cannot starve another waiter of a genuine wake-up.
func (b *buffer) waitLocked(deadline time.Time) {
	if deadline.IsZero() {
		b.cond.Wait()
		return
	}
	t := time.AfterFunc(time.Until(deadline), func() {
		b.mu.Lock()
		b.cond.Broadcast()
		b.mu.Unlock()
	})
	b.cond.Wait()
	t.Stop()
}

func expired(deadline time.Time) bool {
	return !deadline.IsZero() && !time.Now().Before(deadline)
}

func (b *buffer) read(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		if b.cut {
			return 0, ErrCut
		}
		if !b.held {
			if len(b.data) > 0 {
				n := copy(p, b.data)
				b.data = b.data[n:]
				return n, nil
			}
			if b.closed {
				return 0, io.EOF
			}
		} else if b.closed {
			// A held buffer can never drain; a close while held aborts the
			// read (queued bytes are lost, like a reset) instead of wedging
			// the reader forever.
			return 0, io.EOF
		}
		if expired(b.rdl) {
			return 0, os.ErrDeadlineExceeded
		}
		b.waitLocked(b.rdl)
	}
}

func (b *buffer) write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		if b.cut {
			return 0, ErrCut
		}
		if b.closed {
			return 0, net.ErrClosed
		}
		if !b.blockedW {
			b.data = append(b.data, p...)
			b.cond.Broadcast()
			return len(p), nil
		}
		if expired(b.wdl) {
			return 0, os.ErrDeadlineExceeded
		}
		b.waitLocked(b.wdl)
	}
}

func (b *buffer) setReadDeadline(t time.Time) {
	b.mu.Lock()
	b.rdl = t
	b.cond.Broadcast()
	b.mu.Unlock()
}

func (b *buffer) setWriteDeadline(t time.Time) {
	b.mu.Lock()
	b.wdl = t
	b.cond.Broadcast()
	b.mu.Unlock()
}

func (b *buffer) blockWrites(v bool) {
	b.mu.Lock()
	b.blockedW = v
	b.cond.Broadcast()
	b.mu.Unlock()
}

func (b *buffer) close() {
	b.mu.Lock()
	b.closed = true
	b.cond.Broadcast()
	b.mu.Unlock()
}

func (b *buffer) doCut() {
	b.mu.Lock()
	b.cut = true
	b.data = nil
	b.cond.Broadcast()
	b.mu.Unlock()
}

func (b *buffer) hold(h bool) {
	b.mu.Lock()
	b.held = h
	b.cond.Broadcast()
	b.mu.Unlock()
}

// pair is one logical connection: the two directional buffers shared by
// its endpoints.
type pair struct {
	up   *buffer // client (point) → server (center)
	down *buffer // server (center) → client (point)
}

func (p *pair) cut() {
	p.up.doCut()
	p.down.doCut()
}

// halfOpen stalls both directions without closing or erroring: reads
// starve and writes block, as if the peer's host vanished mid-connection.
func (p *pair) halfOpen() {
	p.up.hold(true)
	p.up.blockWrites(true)
	p.down.hold(true)
	p.down.blockWrites(true)
}

// Conn is one endpoint of an in-memory connection. It implements net.Conn
// with honest deadline semantics: a blocked Read or Write wakes when its
// deadline passes and fails with os.ErrDeadlineExceeded.
type Conn struct {
	rb, wb        *buffer
	local, remote fakeAddr
	closed        atomic.Bool
}

// Read implements net.Conn.
func (c *Conn) Read(p []byte) (int, error) {
	if c.closed.Load() {
		return 0, net.ErrClosed
	}
	n, err := c.rb.read(p)
	if err != nil && c.closed.Load() {
		err = net.ErrClosed
	}
	return n, err
}

// Write implements net.Conn.
func (c *Conn) Write(p []byte) (int, error) {
	if c.closed.Load() {
		return 0, net.ErrClosed
	}
	n, err := c.wb.write(p)
	if err != nil && c.closed.Load() {
		err = net.ErrClosed
	}
	return n, err
}

// Close implements net.Conn: the peer drains buffered bytes and then sees
// EOF; further operations on this endpoint fail with net.ErrClosed.
func (c *Conn) Close() error {
	if c.closed.CompareAndSwap(false, true) {
		c.wb.close()
		c.rb.close()
	}
	return nil
}

// LocalAddr implements net.Conn.
func (c *Conn) LocalAddr() net.Addr { return c.local }

// RemoteAddr implements net.Conn.
func (c *Conn) RemoteAddr() net.Addr { return c.remote }

// SetDeadline implements net.Conn: it bounds both pending and future
// Reads and Writes. The zero time clears the deadline.
func (c *Conn) SetDeadline(t time.Time) error {
	c.rb.setReadDeadline(t)
	c.wb.setWriteDeadline(t)
	return nil
}

// SetReadDeadline implements net.Conn for the read direction.
func (c *Conn) SetReadDeadline(t time.Time) error {
	c.rb.setReadDeadline(t)
	return nil
}

// SetWriteDeadline implements net.Conn for the write direction. Writes on
// a healthy fabric buffer without blocking, so the deadline only bites
// when fault injection (HalfOpen) has stalled the peer.
func (c *Conn) SetWriteDeadline(t time.Time) error {
	c.wb.setWriteDeadline(t)
	return nil
}

// Listener is the center's in-memory accept queue. It implements
// net.Listener and plugs into transport.CenterConfig.Listener.
type Listener struct {
	addr   fakeAddr
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []*Conn
	closed bool
}

// Accept implements net.Listener.
func (l *Listener) Accept() (net.Conn, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for len(l.queue) == 0 && !l.closed {
		l.cond.Wait()
	}
	if len(l.queue) == 0 {
		return nil, net.ErrClosed
	}
	c := l.queue[0]
	l.queue = l.queue[1:]
	return c, nil
}

// Close implements net.Listener.
func (l *Listener) Close() error {
	l.mu.Lock()
	l.closed = true
	l.cond.Broadcast()
	l.mu.Unlock()
	return nil
}

// Addr implements net.Listener.
func (l *Listener) Addr() net.Addr { return l.addr }

func (l *Listener) isClosed() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.closed
}

// DefaultNode is the server name used by the single-center convenience
// surface (Listen, Link, Partition): the fabric most tests need is one
// center plus point links, and that shape predates multi-level fabrics.
const DefaultNode = "center"

// node is one listening endpoint of the fabric (a center shard or a
// relay) with its own partition state and connection set.
type node struct {
	lis   *Listener
	down  bool
	pairs []*pair
}

// Network is one test's fabric: named listening nodes (one per center
// shard or relay; plain single-center tests use just DefaultNode), any
// number of links, and per-node partition control.
type Network struct {
	mu    sync.Mutex
	rng   *rand.Rand
	nodes map[string]*node
	seq   int
}

// New creates a fabric whose Rand is seeded deterministically.
func New(seed int64) *Network {
	return &Network{rng: rand.New(rand.NewSource(seed)), nodes: make(map[string]*node)}
}

// Rand exposes the fabric's seeded source for scripting fault schedules.
// It is not safe for concurrent use; call it from the test goroutine only.
func (n *Network) Rand() *rand.Rand { return n.rng }

// listener returns the node's current listener (nil before ListenAt).
func (n *Network) listener(name string) *Listener {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.nodeLocked(name).lis
}

func (n *Network) nodeLocked(name string) *node {
	nd := n.nodes[name]
	if nd == nil {
		nd = &node{}
		n.nodes[name] = nd
	}
	return nd
}

// ListenAt creates the named node's listener (a center shard, a relay).
// A second call for the same name is allowed only after the previous
// listener closed — that is a node restart, and subsequent dials reach
// the new listener.
func (n *Network) ListenAt(name string) *Listener {
	n.mu.Lock()
	defer n.mu.Unlock()
	nd := n.nodeLocked(name)
	if nd.lis != nil && !nd.lis.isClosed() {
		panic("faultnet: ListenAt(" + name + ") called twice on a live listener")
	}
	l := &Listener{addr: fakeAddr("faultnet:" + name)}
	l.cond = sync.NewCond(&l.mu)
	nd.lis = l
	return l
}

// Listen creates the center's listener (ListenAt(DefaultNode)).
func (n *Network) Listen() *Listener {
	return n.ListenAt(DefaultNode)
}

// Dial opens a raw connection to the center listener. The addr argument is
// ignored (links and dialers are bound to their node by construction); it
// exists so the method satisfies transport.PointConfig.Dial directly.
func (n *Network) Dial(addr string) (net.Conn, error) {
	c, _, err := n.dial(DefaultNode)
	return c, err
}

// DialerTo returns a dialer bound to the named node, in the shape
// transport configs take. Unlike a Link it carries no fault controls;
// use it for upstream hops whose faults the test scripts at the server
// end (PartitionNode, restart).
func (n *Network) DialerTo(name string) func(string) (net.Conn, error) {
	return func(string) (net.Conn, error) {
		c, _, err := n.dial(name)
		return c, err
	}
}

// dial builds a connection pair, queues the server end on the node's
// listener and returns the client end plus the pair handle for fault
// control.
func (n *Network) dial(name string) (*Conn, *pair, error) {
	n.mu.Lock()
	nd := n.nodeLocked(name)
	if nd.down {
		n.mu.Unlock()
		return nil, nil, ErrDown
	}
	l := nd.lis
	if l == nil {
		n.mu.Unlock()
		return nil, nil, errors.New("faultnet: dial " + name + " before ListenAt")
	}
	n.seq++
	id := n.seq
	n.mu.Unlock()

	p := &pair{up: newBuffer(), down: newBuffer()}
	server := fakeAddr("faultnet:" + name)
	client := &Conn{rb: p.down, wb: p.up,
		local: fakeAddr("faultnet:point-" + itoa(id)), remote: server}
	srv := &Conn{rb: p.up, wb: p.down,
		local: server, remote: fakeAddr("faultnet:point-" + itoa(id))}

	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil, nil, ErrDown
	}
	l.queue = append(l.queue, srv)
	l.cond.Broadcast()
	l.mu.Unlock()

	n.mu.Lock()
	nd.pairs = append(nd.pairs, p)
	n.mu.Unlock()
	return client, p, nil
}

// PartitionNode takes one node off the network: its existing connections
// are cut and dials to it fail with ErrDown until HealNode. Other nodes
// are untouched — cutting one shard or one relay is how the failover
// tests isolate a subtree.
func (n *Network) PartitionNode(name string) {
	n.mu.Lock()
	nd := n.nodeLocked(name)
	nd.down = true
	pairs := append([]*pair(nil), nd.pairs...)
	n.mu.Unlock()
	for _, p := range pairs {
		p.cut()
	}
}

// HealNode restores dialing to a node after a PartitionNode.
func (n *Network) HealNode(name string) {
	n.mu.Lock()
	n.nodeLocked(name).down = false
	n.mu.Unlock()
}

// Partition takes the center off the network (PartitionNode(DefaultNode)):
// existing connections are cut and dials fail with ErrDown until Heal.
func (n *Network) Partition() {
	n.PartitionNode(DefaultNode)
}

// Heal restores dialing after a Partition.
func (n *Network) Heal() {
	n.HealNode(DefaultNode)
}

// CutAll severs every live connection on every node without taking
// anything down: immediate redials succeed.
func (n *Network) CutAll() {
	n.mu.Lock()
	var pairs []*pair
	for _, nd := range n.nodes {
		pairs = append(pairs, nd.pairs...)
	}
	n.mu.Unlock()
	for _, p := range pairs {
		p.cut()
	}
}

// LinkTo returns one client's attachment to the named node: a dialer for
// transport configs plus fault controls scoped to that client's most
// recent connection.
func (n *Network) LinkTo(name string) *Link {
	return &Link{n: n, node: name}
}

// Link returns one point's attachment to the center (LinkTo(DefaultNode)).
func (n *Network) Link() *Link {
	return n.LinkTo(DefaultNode)
}

// Link is a per-client dialer with connection-scoped fault controls.
type Link struct {
	n         *Network
	node      string
	mu        sync.Mutex
	cur       *pair
	failDials int
	dials     int
}

// Dial satisfies transport.PointConfig.Dial.
func (l *Link) Dial(addr string) (net.Conn, error) {
	l.mu.Lock()
	if l.failDials > 0 {
		l.failDials--
		l.mu.Unlock()
		return nil, ErrDown
	}
	l.mu.Unlock()
	c, p, err := l.n.dial(l.node)
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	l.cur = p
	l.dials++
	l.mu.Unlock()
	return c, nil
}

// Dials reports how many connections this link has established.
func (l *Link) Dials() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dials
}

// FailDials makes the next k dial attempts fail with ErrDown, modelling a
// point whose route to the center flaps during reconnection.
func (l *Link) FailDials(k int) {
	l.mu.Lock()
	l.failDials = k
	l.mu.Unlock()
}

// Cut severs the point's current connection at a message boundary. Both
// endpoints fail with ErrCut; bytes in flight (including held pushes) are
// discarded, which is how a test drops an upload or a push on the floor.
func (l *Link) Cut() {
	if p := l.current(); p != nil {
		p.cut()
	}
}

// HoldPushes stalls the center→point direction: pushes queue up in the
// fabric instead of reaching the point (slow link). Cut discards them;
// ReleasePushes delivers them.
func (l *Link) HoldPushes() {
	if p := l.current(); p != nil {
		p.down.hold(true)
	}
}

// ReleasePushes ends a HoldPushes stall and delivers queued pushes.
func (l *Link) ReleasePushes() {
	if p := l.current(); p != nil {
		p.down.hold(false)
	}
}

// HoldUploads stalls the point→center direction; the point's writes still
// succeed locally (the fabric buffers them), modelling a slow uplink.
func (l *Link) HoldUploads() {
	if p := l.current(); p != nil {
		p.up.hold(true)
	}
}

// ReleaseUploads ends a HoldUploads stall and delivers queued uploads.
func (l *Link) ReleaseUploads() {
	if p := l.current(); p != nil {
		p.up.hold(false)
	}
}

// HalfOpen makes the point's current connection half-open: the remote
// host "vanishes" without FIN or RST, so both endpoints' reads starve and
// writes block indefinitely with no error. Neither side learns anything
// unless it armed a deadline (or gave up and closed its own end). Cut the
// pair or close either endpoint to release the stuck goroutines.
func (l *Link) HalfOpen() {
	if p := l.current(); p != nil {
		p.halfOpen()
	}
}

func (l *Link) current() *pair {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.cur
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

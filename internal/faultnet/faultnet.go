// Package faultnet is an in-memory network fabric for deterministic
// fault-injection tests of the center↔point protocol. It provides a
// net.Listener and dialers whose connections are plain in-process byte
// pipes, plus scriptable fault controls that act at message boundaries:
//
//   - Link.Cut severs a point's current connection (both directions fail
//     like a reset TCP connection, buffered bytes are discarded);
//   - Link.HoldPushes / Link.HoldUploads stall one direction without
//     dropping it (slow-link injection) until the matching Release;
//   - Link.FailDials makes the next k redial attempts fail;
//   - Network.Partition takes the center off the network (dials fail,
//     existing connections are cut) until Network.Heal.
//
// Because every fault is triggered explicitly by the test between protocol
// steps — never by a timer — each failure scenario is reproducible
// byte-for-byte and clean under the race detector. The seeded Rand lets a
// test script derive fault schedules (which epoch to drop, which point to
// restart) that are random-looking but fixed for a given seed.
package faultnet

import (
	"errors"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ErrCut is returned by reads and writes on a connection severed by fault
// injection (Link.Cut, Network.Partition), mimicking a reset connection.
var ErrCut = errors.New("faultnet: connection cut by fault injection")

// ErrDown is returned by dials while the center is unreachable
// (Network.Partition or Link.FailDials).
var ErrDown = errors.New("faultnet: center unreachable")

type fakeAddr string

func (a fakeAddr) Network() string { return "faultnet" }
func (a fakeAddr) String() string  { return string(a) }

// buffer is one direction of a connection pair: an unbounded byte queue
// with graceful-close, cut and hold states.
type buffer struct {
	mu     sync.Mutex
	cond   *sync.Cond
	data   []byte
	closed bool // graceful close: readers drain, then EOF; writers fail
	cut    bool // fault: both sides fail immediately, queued bytes dropped
	held   bool // slow link: readers stall until released
}

func newBuffer() *buffer {
	b := &buffer{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *buffer) read(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		if b.cut {
			return 0, ErrCut
		}
		if !b.held {
			if len(b.data) > 0 {
				n := copy(p, b.data)
				b.data = b.data[n:]
				return n, nil
			}
			if b.closed {
				return 0, io.EOF
			}
		}
		b.cond.Wait()
	}
}

func (b *buffer) write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.cut {
		return 0, ErrCut
	}
	if b.closed {
		return 0, net.ErrClosed
	}
	b.data = append(b.data, p...)
	b.cond.Broadcast()
	return len(p), nil
}

func (b *buffer) close() {
	b.mu.Lock()
	b.closed = true
	b.cond.Broadcast()
	b.mu.Unlock()
}

func (b *buffer) doCut() {
	b.mu.Lock()
	b.cut = true
	b.data = nil
	b.cond.Broadcast()
	b.mu.Unlock()
}

func (b *buffer) hold(h bool) {
	b.mu.Lock()
	b.held = h
	b.cond.Broadcast()
	b.mu.Unlock()
}

// pair is one logical connection: the two directional buffers shared by
// its endpoints.
type pair struct {
	up   *buffer // client (point) → server (center)
	down *buffer // server (center) → client (point)
}

func (p *pair) cut() {
	p.up.doCut()
	p.down.doCut()
}

// Conn is one endpoint of an in-memory connection. It implements net.Conn;
// deadlines are accepted and ignored (the harness never relies on timers).
type Conn struct {
	rb, wb        *buffer
	local, remote fakeAddr
	closed        atomic.Bool
}

// Read implements net.Conn.
func (c *Conn) Read(p []byte) (int, error) {
	if c.closed.Load() {
		return 0, net.ErrClosed
	}
	n, err := c.rb.read(p)
	if err != nil && c.closed.Load() {
		err = net.ErrClosed
	}
	return n, err
}

// Write implements net.Conn.
func (c *Conn) Write(p []byte) (int, error) {
	if c.closed.Load() {
		return 0, net.ErrClosed
	}
	n, err := c.wb.write(p)
	if err != nil && c.closed.Load() {
		err = net.ErrClosed
	}
	return n, err
}

// Close implements net.Conn: the peer drains buffered bytes and then sees
// EOF; further operations on this endpoint fail with net.ErrClosed.
func (c *Conn) Close() error {
	if c.closed.CompareAndSwap(false, true) {
		c.wb.close()
		c.rb.close()
	}
	return nil
}

// LocalAddr implements net.Conn.
func (c *Conn) LocalAddr() net.Addr { return c.local }

// RemoteAddr implements net.Conn.
func (c *Conn) RemoteAddr() net.Addr { return c.remote }

// SetDeadline implements net.Conn as a no-op.
func (c *Conn) SetDeadline(t time.Time) error { return nil }

// SetReadDeadline implements net.Conn as a no-op.
func (c *Conn) SetReadDeadline(t time.Time) error { return nil }

// SetWriteDeadline implements net.Conn as a no-op.
func (c *Conn) SetWriteDeadline(t time.Time) error { return nil }

// Listener is the center's in-memory accept queue. It implements
// net.Listener and plugs into transport.CenterConfig.Listener.
type Listener struct {
	addr   fakeAddr
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []*Conn
	closed bool
}

// Accept implements net.Listener.
func (l *Listener) Accept() (net.Conn, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for len(l.queue) == 0 && !l.closed {
		l.cond.Wait()
	}
	if len(l.queue) == 0 {
		return nil, net.ErrClosed
	}
	c := l.queue[0]
	l.queue = l.queue[1:]
	return c, nil
}

// Close implements net.Listener.
func (l *Listener) Close() error {
	l.mu.Lock()
	l.closed = true
	l.cond.Broadcast()
	l.mu.Unlock()
	return nil
}

// Addr implements net.Listener.
func (l *Listener) Addr() net.Addr { return l.addr }

func (l *Listener) isClosed() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.closed
}

// Network is one test's fabric: a single center listener, any number of
// point links, and global partition control.
type Network struct {
	mu    sync.Mutex
	rng   *rand.Rand
	lis   *Listener
	pairs []*pair
	down  bool
	seq   int
}

// New creates a fabric whose Rand is seeded deterministically.
func New(seed int64) *Network {
	return &Network{rng: rand.New(rand.NewSource(seed))}
}

// Rand exposes the fabric's seeded source for scripting fault schedules.
// It is not safe for concurrent use; call it from the test goroutine only.
func (n *Network) Rand() *rand.Rand { return n.rng }

// Listen creates the center's listener. A second call is allowed only
// after the previous listener closed — that is a center restart, and
// subsequent dials reach the new listener.
func (n *Network) Listen() *Listener {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.lis != nil && !n.lis.isClosed() {
		panic("faultnet: Listen called twice on a live listener")
	}
	l := &Listener{addr: "faultnet:center"}
	l.cond = sync.NewCond(&l.mu)
	n.lis = l
	return l
}

// Dial opens a raw connection to the center listener. The addr argument is
// ignored (there is one listener); it exists so the method satisfies
// transport.PointConfig.Dial directly.
func (n *Network) Dial(addr string) (net.Conn, error) {
	c, _, err := n.dial()
	return c, err
}

// dial builds a connection pair, queues the server end on the listener and
// returns the client end plus the pair handle for fault control.
func (n *Network) dial() (*Conn, *pair, error) {
	n.mu.Lock()
	if n.down {
		n.mu.Unlock()
		return nil, nil, ErrDown
	}
	l := n.lis
	if l == nil {
		n.mu.Unlock()
		return nil, nil, errors.New("faultnet: dial before Listen")
	}
	n.seq++
	id := n.seq
	n.mu.Unlock()

	p := &pair{up: newBuffer(), down: newBuffer()}
	client := &Conn{rb: p.down, wb: p.up,
		local: fakeAddr("faultnet:point-" + itoa(id)), remote: "faultnet:center"}
	server := &Conn{rb: p.up, wb: p.down,
		local: "faultnet:center", remote: fakeAddr("faultnet:point-" + itoa(id))}

	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil, nil, ErrDown
	}
	l.queue = append(l.queue, server)
	l.cond.Broadcast()
	l.mu.Unlock()

	n.mu.Lock()
	n.pairs = append(n.pairs, p)
	n.mu.Unlock()
	return client, p, nil
}

// Partition takes the center off the network: existing connections are cut
// and dials fail with ErrDown until Heal.
func (n *Network) Partition() {
	n.mu.Lock()
	n.down = true
	pairs := append([]*pair(nil), n.pairs...)
	n.mu.Unlock()
	for _, p := range pairs {
		p.cut()
	}
}

// Heal restores dialing after a Partition.
func (n *Network) Heal() {
	n.mu.Lock()
	n.down = false
	n.mu.Unlock()
}

// CutAll severs every live connection without taking the center down:
// immediate redials succeed.
func (n *Network) CutAll() {
	n.mu.Lock()
	pairs := append([]*pair(nil), n.pairs...)
	n.mu.Unlock()
	for _, p := range pairs {
		p.cut()
	}
}

// Link returns one point's attachment to the fabric: a dialer for
// transport.PointConfig.Dial plus fault controls scoped to that point's
// most recent connection.
func (n *Network) Link() *Link {
	return &Link{n: n}
}

// Link is a per-point dialer with connection-scoped fault controls.
type Link struct {
	n         *Network
	mu        sync.Mutex
	cur       *pair
	failDials int
	dials     int
}

// Dial satisfies transport.PointConfig.Dial.
func (l *Link) Dial(addr string) (net.Conn, error) {
	l.mu.Lock()
	if l.failDials > 0 {
		l.failDials--
		l.mu.Unlock()
		return nil, ErrDown
	}
	l.mu.Unlock()
	c, p, err := l.n.dial()
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	l.cur = p
	l.dials++
	l.mu.Unlock()
	return c, nil
}

// Dials reports how many connections this link has established.
func (l *Link) Dials() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dials
}

// FailDials makes the next k dial attempts fail with ErrDown, modelling a
// point whose route to the center flaps during reconnection.
func (l *Link) FailDials(k int) {
	l.mu.Lock()
	l.failDials = k
	l.mu.Unlock()
}

// Cut severs the point's current connection at a message boundary. Both
// endpoints fail with ErrCut; bytes in flight (including held pushes) are
// discarded, which is how a test drops an upload or a push on the floor.
func (l *Link) Cut() {
	if p := l.current(); p != nil {
		p.cut()
	}
}

// HoldPushes stalls the center→point direction: pushes queue up in the
// fabric instead of reaching the point (slow link). Cut discards them;
// ReleasePushes delivers them.
func (l *Link) HoldPushes() {
	if p := l.current(); p != nil {
		p.down.hold(true)
	}
}

// ReleasePushes ends a HoldPushes stall and delivers queued pushes.
func (l *Link) ReleasePushes() {
	if p := l.current(); p != nil {
		p.down.hold(false)
	}
}

// HoldUploads stalls the point→center direction; the point's writes still
// succeed locally (the fabric buffers them), modelling a slow uplink.
func (l *Link) HoldUploads() {
	if p := l.current(); p != nil {
		p.up.hold(true)
	}
}

// ReleaseUploads ends a HoldUploads stall and delivers queued uploads.
func (l *Link) ReleaseUploads() {
	if p := l.current(); p != nil {
		p.up.hold(false)
	}
}

func (l *Link) current() *pair {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.cur
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

package window

import (
	"testing"
	"testing/quick"
	"time"
)

func TestValidate(t *testing.T) {
	tests := []struct {
		name    string
		give    Config
		wantErr bool
	}{
		{name: "paper default", give: Config{T: time.Minute, N: 10}},
		{name: "zero T", give: Config{T: 0, N: 10}, wantErr: true},
		{name: "n too small", give: Config{T: time.Minute, N: 2}, wantErr: true},
		{name: "indivisible", give: Config{T: time.Minute, N: 7}, wantErr: true},
		{name: "n=60", give: Config{T: time.Minute, N: 60}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.give.Validate(); (err != nil) != tt.wantErr {
				t.Fatalf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestEpochArithmetic(t *testing.T) {
	c := Config{T: time.Minute, N: 10} // h = 6s
	if c.H() != 6*time.Second {
		t.Fatalf("H = %v, want 6s", c.H())
	}
	if got := c.EpochOf(0); got != 1 {
		t.Fatalf("EpochOf(0) = %d, want 1", got)
	}
	if got := c.EpochOf(int64(6*time.Second) - 1); got != 1 {
		t.Fatalf("end of epoch 1 = %d, want 1", got)
	}
	if got := c.EpochOf(int64(6 * time.Second)); got != 2 {
		t.Fatalf("EpochOf(6s) = %d, want 2", got)
	}
	if got := c.EpochStart(3); got != int64(12*time.Second) {
		t.Fatalf("EpochStart(3) = %d", got)
	}
	if got := c.EpochEnd(3); got != int64(18*time.Second) {
		t.Fatalf("EpochEnd(3) = %d", got)
	}
}

func TestEpochOfConsistent(t *testing.T) {
	c := Config{T: time.Minute, N: 12}
	err := quick.Check(func(ts uint32) bool {
		k := c.EpochOf(int64(ts))
		return c.EpochStart(k) <= int64(ts) && int64(ts) < c.EpochEnd(k)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestApproxStreamSteadyState(t *testing.T) {
	c := Config{T: time.Minute, N: 10}
	// Query at t in epoch 20 (t = 114s + 3s).
	tq := int64(117 * time.Second)
	q := c.ApproxStream(tq)
	if q.Epoch != 20 {
		t.Fatalf("epoch = %d, want 20", q.Epoch)
	}
	if q.PeerFirst != 11 || q.PeerLast != 18 {
		t.Fatalf("peer range = [%d,%d], want [11,18]", q.PeerFirst, q.PeerLast)
	}
	if q.LocalFirst != 11 || q.LocalLast != 19 {
		t.Fatalf("local range = [%d,%d], want [11,19]", q.LocalFirst, q.LocalLast)
	}
	if q.LocalUntil != tq {
		t.Fatalf("LocalUntil = %d, want %d", q.LocalUntil, tq)
	}
	// Peer window has n-2 = 8 epochs; local has n-1 = 9 completed epochs.
	if n := q.PeerLast - q.PeerFirst + 1; n != 8 {
		t.Fatalf("peer epochs = %d, want 8", n)
	}
}

func TestApproxStreamAtBoundary(t *testing.T) {
	c := Config{T: time.Minute, N: 10}
	// Exactly at the start of epoch 21: local partial epoch is empty.
	tq := c.EpochStart(21)
	q := c.ApproxStream(tq)
	if q.Epoch != 21 {
		t.Fatalf("epoch = %d, want 21", q.Epoch)
	}
	if q.LocalUntil != c.EpochStart(21) {
		t.Fatal("boundary query should include no current-epoch data")
	}
	if q.PeerFirst != 12 || q.PeerLast != 19 || q.LocalLast != 20 {
		t.Fatalf("unexpected window %+v", q)
	}
}

func TestApproxStreamClampsAtStart(t *testing.T) {
	c := Config{T: time.Minute, N: 10}
	q := c.ApproxStream(int64(time.Second)) // epoch 1
	if q.PeerFirst != 1 || q.LocalFirst != 1 {
		t.Fatalf("start-up window not clamped: %+v", q)
	}
	if q.PeerLast != -1 || q.LocalLast != 0 {
		t.Fatalf("start-up completed ranges should be empty: %+v", q)
	}
}

func TestWarm(t *testing.T) {
	c := Config{T: time.Minute, N: 10}
	if c.Warm(10) {
		t.Fatal("epoch n should not be warm")
	}
	if !c.Warm(11) {
		t.Fatal("epoch n+1 should be warm")
	}
}

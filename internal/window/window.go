// Package window implements the paper's epoch/window arithmetic.
//
// A T-query at time t asks about the sliding window [t-T, t). Time is split
// into epochs of length h = T/n; epoch k (1-based, as in the paper) covers
// [(k-1)h, kh). The *approximate networkwide T-stream* answered by the
// protocol for a query at time t in epoch k is:
//
//   - peer points:  epochs k-n+1 .. k-2 (the window's completed epochs,
//     minus the last one, whose networkwide aggregate cannot have arrived
//     yet given the round-trip bound);
//   - local point:  epochs k-n+1 .. k-1 plus the current epoch up to t.
//
// Virtual time is int64 nanoseconds from the start of the trace, so the
// whole simulation is deterministic and independent of the wall clock.
package window

import (
	"fmt"
	"time"
)

// Time is virtual time: nanoseconds since trace start.
type Time = int64

// Config describes the window model.
type Config struct {
	// T is the query window length.
	T time.Duration
	// N is the number of epochs per window (the paper's n). Larger N makes
	// the approximate T-query approach the exact T-query.
	N int
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.T <= 0 {
		return fmt.Errorf("window: T must be positive, got %v", c.T)
	}
	if c.N < 3 {
		// n-2 completed epochs must be nonempty for the networkwide part.
		return fmt.Errorf("window: N must be at least 3, got %d", c.N)
	}
	if c.T.Nanoseconds()%int64(c.N) != 0 {
		return fmt.Errorf("window: T (%v) must be divisible by N (%d)", c.T, c.N)
	}
	return nil
}

// H returns the epoch length h = T/N.
func (c Config) H() time.Duration {
	return c.T / time.Duration(c.N)
}

// EpochOf returns the 1-based epoch containing ts (ts >= 0).
func (c Config) EpochOf(ts Time) int64 {
	return ts/int64(c.H()) + 1
}

// EpochStart returns the start time of epoch k.
func (c Config) EpochStart(k int64) Time {
	return (k - 1) * int64(c.H())
}

// EpochEnd returns the end time of epoch k (exclusive).
func (c Config) EpochEnd(k int64) Time {
	return k * int64(c.H())
}

// QueryWindow describes which epochs contribute to the approximate
// networkwide T-stream for one query. Epoch ranges are inclusive; a range
// with First > Last is empty. Epochs below 1 are clamped away (trace
// start-up).
type QueryWindow struct {
	// Epoch is the current epoch k at query time.
	Epoch int64
	// PeerFirst..PeerLast are the completed epochs whose *networkwide*
	// data the query covers (k-n+1 .. k-2).
	PeerFirst, PeerLast int64
	// LocalFirst..LocalLast are the completed epochs of *local* data
	// (k-n+1 .. k-1).
	LocalFirst, LocalLast int64
	// LocalUntil is the query instant t: local data of the current epoch
	// is included for [EpochStart(Epoch), t).
	LocalUntil Time
}

// ApproxStream returns the approximate networkwide T-stream window for a
// query at time t.
func (c Config) ApproxStream(t Time) QueryWindow {
	k := c.EpochOf(t)
	q := QueryWindow{
		Epoch:      k,
		PeerFirst:  k - int64(c.N) + 1,
		PeerLast:   k - 2,
		LocalFirst: k - int64(c.N) + 1,
		LocalLast:  k - 1,
		LocalUntil: t,
	}
	if q.PeerFirst < 1 {
		q.PeerFirst = 1
	}
	if q.LocalFirst < 1 {
		q.LocalFirst = 1
	}
	return q
}

// Warm reports whether epoch k is late enough that the protocol's C sketch
// holds a full window (the center has pushed n-2 completed epochs). Queries
// before this see a partially-filled window at every design and baseline
// alike; experiments only score warm epochs.
func (c Config) Warm(k int64) bool {
	return k >= int64(c.N)+1
}
